// Fleet semantics: tenant isolation, typed load shedding, deadline
// expiry, admission fairness, and ledger epoch fencing across tenants.
//
// The shedding tests pin their timing by construction instead of by
// sleeping: a fleet with one shard is given a large QuoteBatchOp first,
// which parks the worker inside the engine, and the assertions run
// against requests queued (or shed) behind it.
#include "svc/fleet.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "distsim/ledger.hpp"
#include "graph/generators.hpp"
#include "mech/invariants.hpp"
#include "util/rng.hpp"

namespace tc::svc {
namespace {

using graph::Cost;
using graph::NodeId;

/// A tenant graph family: same shape, different seeds per tenant.
graph::NodeGraph tenant_graph(std::uint64_t seed, std::size_t n = 24) {
  return graph::make_erdos_renyi(n, 0.3, 0.5, 9.0, seed);
}

Request quote_req(TenantId tenant, NodeId source, NodeId target,
                  Priority priority = Priority::kInteractive,
                  std::uint64_t deadline_us = 0) {
  Request req;
  req.tenant = tenant;
  req.priority = priority;
  req.deadline_us = deadline_us;
  req.op = QuoteOp{source, target};
  return req;
}

Request declare_req(TenantId tenant, NodeId node, Cost cost) {
  Request req;
  req.tenant = tenant;
  req.op = DeclareOp{node, cost};
  return req;
}

/// All ordered pairs of a graph — a deliberately slow batch that parks a
/// shard worker inside the tenant engine for a while.
QuoteBatchOp all_pairs(const graph::NodeGraph& g) {
  QuoteBatchOp batch;
  const auto n = static_cast<NodeId>(g.num_nodes());
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) batch.pairs.emplace_back(u, v);
    }
  }
  return batch;
}

TEST(Fleet, QuoteMatchesStandaloneEngine) {
  const auto g = tenant_graph(11);
  Fleet fleet;
  ASSERT_EQ(fleet.create_tenant(7, g, 0), Status::kOk);
  QuoteEngine oracle(g, 0);

  const Response to_ap = fleet.call(quote_req(7, 5, graph::kInvalidNode));
  ASSERT_EQ(to_ap.status, Status::kOk);
  const auto want_ap = oracle.quote(5);
  ASSERT_EQ(to_ap.quote.has_value(), want_ap.has_value());
  if (want_ap) {
    EXPECT_EQ(to_ap.quote->path, want_ap->path);
    EXPECT_EQ(to_ap.quote->payments, want_ap->payments);
  }

  const Response pair = fleet.call(quote_req(7, 3, 9));
  ASSERT_EQ(pair.status, Status::kOk);
  const auto want_pair = oracle.quote(3, 9);
  ASSERT_EQ(pair.quote.has_value(), want_pair.has_value());
  if (want_pair) {
    EXPECT_EQ(pair.quote->payments, want_pair->payments);
  }

  // Declarations advance the tenant epoch exactly like the bare engine.
  const Response decl = fleet.call(declare_req(7, 4, 2.25));
  ASSERT_EQ(decl.status, Status::kOk);
  EXPECT_EQ(decl.epoch, oracle.declare_cost(4, 2.25));
}

TEST(Fleet, DeclareStormDoesNotPerturbOtherTenants) {
  const auto quiet_graph = tenant_graph(21);
  Config config;
  config.fleet.shards = 2;  // noisy and quiet tenants share a fleet
  Fleet fleet(config);
  ASSERT_EQ(fleet.create_tenant(0, tenant_graph(20), 0), Status::kOk);
  ASSERT_EQ(fleet.create_tenant(1, quiet_graph, 0), Status::kOk);

  // Baseline quote for the quiet tenant, before the storm.
  const Response before = fleet.call(quote_req(1, 6, graph::kInvalidNode));
  ASSERT_EQ(before.status, Status::kOk);
  ASSERT_TRUE(before.quote.has_value());
  const std::uint64_t quiet_epoch = before.epoch;

  // Storm: hammer tenant 0 with re-declarations.
  util::Rng rng(0xf1ee7ULL);
  std::vector<std::future<Response>> storm;
  for (int i = 0; i < 500; ++i) {
    const auto v = static_cast<NodeId>(1 + rng.next_below(19));
    storm.push_back(
        fleet.submit(declare_req(0, v, rng.uniform(0.2, 12.0))));
  }
  for (auto& f : storm) EXPECT_EQ(f.get().status, Status::kOk);

  // The quiet tenant's epoch did not move and its quote is unchanged —
  // and still audits clean against the declared profile.
  const Response after = fleet.call(quote_req(1, 6, graph::kInvalidNode));
  ASSERT_EQ(after.status, Status::kOk);
  EXPECT_EQ(after.epoch, quiet_epoch);
  ASSERT_TRUE(after.quote.has_value());
  EXPECT_EQ(after.quote->path, before.quote->path);
  EXPECT_EQ(after.quote->payments, before.quote->payments);

  mech::UnicastOutcome outcome;
  outcome.path = after.quote->path;
  outcome.path_cost = after.quote->path_cost;
  outcome.payments = after.quote->payments;
  const auto report = mech::audit_unicast_payment(quiet_graph, 6, 0, outcome);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Fleet, ExpiredQuoteGetsTypedRejectionNeverAStaleQuote) {
  const auto g = tenant_graph(31, 40);
  Config config;
  config.fleet.shards = 1;
  Fleet fleet(config);
  ASSERT_EQ(fleet.create_tenant(0, g, 0), Status::kOk);

  // Park the worker in a large batch, then queue a 1us-deadline quote
  // behind it: by the time the worker dequeues it, it is long dead.
  Request slow;
  slow.tenant = 0;
  slow.op = all_pairs(g);
  auto slow_future = fleet.submit(std::move(slow));
  auto dead = fleet.submit(quote_req(0, 3, 9, Priority::kInteractive,
                                     /*deadline_us=*/1));

  const Response r = dead.get();
  EXPECT_EQ(r.status, Status::kExpiredDeadline);
  EXPECT_FALSE(r.quote.has_value());  // typed rejection, no stale data
  EXPECT_EQ(slow_future.get().status, Status::kOk);

  const auto m = fleet.metrics();
  EXPECT_GE(m.expired, 1u);
}

TEST(Fleet, QueueFullShedsImmediately) {
  const auto g = tenant_graph(41, 40);
  Config config;
  config.fleet.shards = 1;
  config.fleet.queue_capacity = 4;
  config.fleet.shed_watermark = 4;  // watermark out of the way
  Fleet fleet(config);
  ASSERT_EQ(fleet.create_tenant(0, g, 0), Status::kOk);

  Request slow;
  slow.tenant = 0;
  slow.op = all_pairs(g);
  auto slow_future = fleet.submit(std::move(slow));
  // The worker may briefly still hold the batch un-popped; queue until
  // the mailbox has actually absorbed `capacity` entries, then overflow.
  std::vector<std::future<Response>> queued;
  std::vector<std::future<Response>> shed;
  while (shed.empty()) {
    auto f = fleet.submit(
        quote_req(0, 3, 9, Priority::kInteractive, /*deadline_us=*/1));
    const bool ready = f.wait_for(std::chrono::seconds(0)) ==
                       std::future_status::ready;
    (ready ? shed : queued).push_back(std::move(f));
    ASSERT_LT(queued.size(), 64u) << "queue never filled";
  }
  EXPECT_EQ(shed.front().get().status, Status::kShedQueueFull);
  for (auto& f : queued) {
    const Status s = f.get().status;
    EXPECT_TRUE(s == Status::kOk || s == Status::kExpiredDeadline);
  }
  EXPECT_EQ(slow_future.get().status, Status::kOk);
  EXPECT_GE(fleet.metrics().shed_queue_full, 1u);
}

TEST(Fleet, WatermarkShedsBatchTrafficOnly) {
  const auto g = tenant_graph(51, 40);
  Config config;
  config.fleet.shards = 1;
  config.fleet.queue_capacity = 64;
  config.fleet.shed_watermark = 1;
  // The admitted quotes deliberately wait behind a slow batch op; keep
  // them alive through sanitizer-grade slowdowns.
  config.fleet.default_deadline_us = 60'000'000;
  Fleet fleet(config);
  ASSERT_EQ(fleet.create_tenant(0, g, 0), Status::kOk);

  Request slow;
  slow.tenant = 0;
  slow.op = all_pairs(g);
  auto slow_future = fleet.submit(std::move(slow));
  // Fill past the watermark with interactive traffic (exempt from it).
  std::vector<std::future<Response>> interactive;
  while (true) {
    auto probe = fleet.submit(quote_req(0, 3, 9, Priority::kBatch));
    if (probe.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      // Watermark reached: the batch probe was shed synchronously while
      // interactive submissions kept being admitted.
      EXPECT_EQ(probe.get().status, Status::kShedWatermark);
      break;
    }
    interactive.push_back(std::move(probe));  // depth was still < mark
    interactive.push_back(
        fleet.submit(quote_req(0, 5, 11, Priority::kInteractive)));
    ASSERT_LT(interactive.size(), 64u) << "watermark never engaged";
  }
  auto admitted =
      fleet.submit(quote_req(0, 7, 13, Priority::kInteractive));
  EXPECT_NE(admitted.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  for (auto& f : interactive) EXPECT_EQ(f.get().status, Status::kOk);
  EXPECT_EQ(admitted.get().status, Status::kOk);
  EXPECT_EQ(slow_future.get().status, Status::kOk);
  EXPECT_GE(fleet.metrics().shed_watermark, 1u);
}

TEST(Fleet, TokenBucketThrottlesPerTenant) {
  Config config;
  config.fleet.tenant_rate_per_sec = 0.001;  // refill is negligible
  config.fleet.tenant_burst = 2.0;
  Fleet fleet(config);
  ASSERT_EQ(fleet.create_tenant(0, tenant_graph(61), 0), Status::kOk);
  ASSERT_EQ(fleet.create_tenant(1, tenant_graph(62), 0), Status::kOk);

  EXPECT_EQ(fleet.call(quote_req(0, 3, 9)).status, Status::kOk);
  EXPECT_EQ(fleet.call(quote_req(0, 4, 9)).status, Status::kOk);
  EXPECT_EQ(fleet.call(quote_req(0, 5, 9)).status, Status::kThrottled);
  // Fairness: tenant 0 exhausting its bucket does not tax tenant 1.
  EXPECT_EQ(fleet.call(quote_req(1, 3, 9)).status, Status::kOk);
  // Declares are never throttled: writes must not be silently dropped.
  EXPECT_EQ(fleet.call(declare_req(0, 4, 3.0)).status, Status::kOk);
  EXPECT_GE(fleet.metrics().throttled, 1u);
}

TEST(Fleet, TypedRejectionsForBadRequests) {
  const auto g = tenant_graph(71);
  Fleet fleet;
  EXPECT_EQ(fleet.call(quote_req(9, 1, 2)).status, Status::kUnknownTenant);
  ASSERT_EQ(fleet.create_tenant(9, g, 0), Status::kOk);
  EXPECT_EQ(fleet.create_tenant(9, g, 0), Status::kTenantExists);
  // Out-of-range endpoints, source==target, AP as source.
  EXPECT_EQ(fleet.call(quote_req(9, 99, 2)).status, Status::kInvalidRequest);
  EXPECT_EQ(fleet.call(quote_req(9, 2, 2)).status, Status::kInvalidRequest);
  EXPECT_EQ(fleet.call(quote_req(9, 0, graph::kInvalidNode)).status,
            Status::kInvalidRequest);
  // Bad declarations: out of range, negative, non-finite.
  EXPECT_EQ(fleet.call(declare_req(9, 99, 1.0)).status,
            Status::kInvalidRequest);
  EXPECT_EQ(fleet.call(declare_req(9, 3, -1.0)).status,
            Status::kInvalidRequest);
  EXPECT_EQ(fleet.call(declare_req(9, 3, graph::kInfCost)).status,
            Status::kInvalidRequest);
  // Marking the access point down is refused, not crashed.
  Request down;
  down.tenant = 9;
  down.op = MarkNodeDownOp{0};
  EXPECT_EQ(fleet.call(std::move(down)).status, Status::kInvalidRequest);
  EXPECT_EQ(fleet.drop_tenant(9), Status::kOk);
  EXPECT_EQ(fleet.drop_tenant(9), Status::kUnknownTenant);
}

TEST(Fleet, ConfigValidationCatchesBadKnobs) {
  Config config;
  EXPECT_TRUE(config.validate().empty());
  config.fleet.queue_capacity = 0;
  EXPECT_FALSE(config.validate().empty());
  config = {};
  config.fleet.shed_watermark = 10'000;  // above default capacity
  EXPECT_FALSE(config.validate().empty());
  config = {};
  config.fleet.default_deadline_us = 0;
  EXPECT_FALSE(config.validate().empty());
  config = {};
  config.fleet.tenant_burst = 0.5;
  EXPECT_FALSE(config.validate().empty());
  config = {};
  config.engine.max_entries_per_shard = 0;
  EXPECT_FALSE(config.validate().empty());
  // Scheduler knobs (DESIGN.md §15).
  config = {};
  config.fleet.load_aware_placement = false;
  config.fleet.work_stealing = true;  // stealing needs the ownership table
  EXPECT_FALSE(config.validate().empty());
  config = {};
  config.fleet.interactive_weight = 0;
  EXPECT_FALSE(config.validate().empty());
  config = {};
  config.fleet.coalesce_cap = 0;
  EXPECT_FALSE(config.validate().empty());
  config = {};
  config.fleet.load_ewma_alpha = 0.0;
  EXPECT_FALSE(config.validate().empty());
  config = {};
  config.fleet.load_ewma_alpha = 1.5;
  EXPECT_FALSE(config.validate().empty());
}

TEST(Fleet, StaticPlacementBaselineStillServes) {
  // The A/B control for the skewed-load soak: scheduler features off,
  // tenants hashed tenant % shards, no ownership table, no steals.
  Config config;
  config.fleet.shards = 2;
  config.fleet.load_aware_placement = false;
  config.fleet.work_stealing = false;
  config.fleet.coalesce_quotes = false;
  Fleet fleet(config);
  const auto g = tenant_graph(91);
  ASSERT_EQ(fleet.create_tenant(3, g, 0), Status::kOk);
  QuoteEngine oracle(g, 0);
  const Response r = fleet.call(quote_req(3, 5, graph::kInvalidNode));
  ASSERT_EQ(r.status, Status::kOk);
  const auto want = oracle.quote(5);
  ASSERT_EQ(r.quote.has_value(), want.has_value());
  if (want) {
    EXPECT_EQ(r.quote->payments, want->payments);
  }
  const auto m = fleet.metrics();
  EXPECT_EQ(m.stolen_runs, 0u);
  EXPECT_EQ(m.coalesced_groups, 0u);
}

TEST(Fleet, CoalescedQuotesMatchOracleAndShareOneEpoch) {
  const auto g = tenant_graph(93, 40);
  Config config;
  config.fleet.shards = 1;
  config.fleet.default_deadline_us = 60'000'000;
  Fleet fleet(config);
  ASSERT_EQ(fleet.create_tenant(0, g, 0), Status::kOk);
  QuoteEngine oracle(g, 0);

  // Park the worker in a big batch, pile same-tenant quotes up behind
  // it, and let the drain loop fold them into one engine call. The park
  // is probabilistic, so retry a few rounds until a group coalesced.
  bool coalesced = false;
  for (int round = 0; round < 20 && !coalesced; ++round) {
    Request slow;
    slow.tenant = 0;
    slow.op = all_pairs(g);
    auto slow_future = fleet.submit(std::move(slow));
    std::vector<std::future<Response>> burst;
    for (NodeId s = 1; s < 17; ++s) {
      burst.push_back(fleet.submit(quote_req(0, s, graph::kInvalidNode)));
    }
    EXPECT_EQ(slow_future.get().status, Status::kOk);
    std::uint64_t epoch = 0;
    for (NodeId s = 1; s < 17; ++s) {
      const Response r = burst[s - 1].get();
      ASSERT_EQ(r.status, Status::kOk);
      if (epoch == 0) epoch = r.epoch;
      // No declare ran: every answer must carry the same epoch.
      EXPECT_EQ(r.epoch, epoch);
      const auto want = oracle.quote(s);
      ASSERT_EQ(r.quote.has_value(), want.has_value()) << "source " << s;
      if (want) {
        EXPECT_EQ(r.quote->path, want->path);
        EXPECT_EQ(r.quote->payments, want->payments);
      }
    }
    coalesced = fleet.metrics().coalesced_groups > 0;
  }
  EXPECT_TRUE(coalesced) << "no quote group ever coalesced in 20 rounds";
}

// Steal-safety stress: tenants migrate between shards mid-declare-storm
// while every worker is busy. Each tenant has exactly ONE writer thread,
// so its declared profile is locally known; every served quote must
// audit clean against it, epochs must rise monotonically through any
// migration, and the outcome counters must conserve. Run under TSan
// this is the steal protocol's race detector.
TEST(Fleet, WorkStealingKeepsTenantsCoherentUnderStorm) {
  constexpr TenantId kTenants = 12;
  constexpr std::size_t kNodes = 16;
  constexpr int kMaxRounds = 40;
  Config config;
  config.fleet.shards = 8;
  config.fleet.steal_min_queue = 1;  // steal eagerly
  config.fleet.default_deadline_us = 60'000'000;
  Fleet fleet(config);

  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::atomic<int> done{0};
  std::vector<std::thread> owners;
  owners.reserve(kTenants);
  for (TenantId t = 0; t < kTenants; ++t) {
    owners.emplace_back([&, t] {
      auto local = tenant_graph(500 + t, kNodes);
      if (fleet.create_tenant(t, local, 0) != Status::kOk) {
        failures.fetch_add(1, std::memory_order_relaxed);
        done.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      util::Rng rng(0x57ea1ULL + static_cast<std::uint64_t>(t));
      std::uint64_t last_epoch = 0;
      for (int round = 0; round < kMaxRounds; ++round) {
        // Declare storm: blocking writes, exact local mirror.
        for (int i = 0; i < 6; ++i) {
          const auto v = static_cast<NodeId>(1 + rng.next_below(kNodes - 1));
          const Cost cost = rng.uniform(0.2, 9.0);
          const Response r = fleet.call(declare_req(t, v, cost));
          if (r.status != Status::kOk) {
            failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          // Epoch monotonicity must survive a mid-storm migration.
          EXPECT_GT(r.epoch, last_epoch);
          last_epoch = r.epoch;
          local.set_node_cost(v, cost);
        }
        // Quote burst, mixed priorities; resolved before the next storm
        // so the local graph matches what the engine priced against.
        std::vector<std::future<Response>> burst;
        for (int i = 0; i < 8; ++i) {
          const auto s = static_cast<NodeId>(1 + rng.next_below(kNodes - 1));
          burst.push_back(fleet.submit(
              quote_req(t, s, graph::kInvalidNode,
                        rng.next_below(2) == 0 ? Priority::kInteractive
                                               : Priority::kBatch)));
        }
        for (auto& f : burst) {
          const Response r = f.get();
          if (r.status == Status::kShedWatermark ||
              r.status == Status::kShedQueueFull ||
              r.status == Status::kExpiredDeadline) {
            continue;  // legitimate under load; nothing to audit
          }
          if (r.status != Status::kOk) {
            failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (!r.quote.has_value()) continue;  // unroutable source
          mech::UnicastOutcome outcome;
          outcome.path = r.quote->path;
          outcome.path_cost = r.quote->path_cost;
          outcome.payments = r.quote->payments;
          const auto report =
              mech::audit_unicast_payment(local, r.quote->path.front(), 0,
                                          outcome);
          if (!report.ok()) {
            failures.fetch_add(1, std::memory_order_relaxed);
            ADD_FAILURE() << "tenant " << t << ": " << report.to_string();
          }
        }
        if (stop.load(std::memory_order_relaxed)) break;
      }
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Let the storm run until at least one run actually migrated, then
  // wind down (the 8 workers against 12 busy tenants make steals near
  // certain within a round or two).
  while (!stop.load(std::memory_order_relaxed)) {
    if (fleet.metrics().stolen_runs > 0 || done.load() == kTenants) {
      stop.store(true);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& t : owners) t.join();
  EXPECT_EQ(failures.load(), 0);

  const auto m = fleet.metrics();
  EXPECT_GT(m.stolen_runs, 0u);
  EXPECT_GE(m.stolen_requests, m.stolen_runs);
  EXPECT_EQ(m.submitted, m.served + m.declares + m.admin +
                             m.shed_queue_full + m.shed_watermark +
                             m.throttled + m.expired + m.rejected);
  EXPECT_EQ(m.admin, kTenants);
}

// Per-tenant ledger epoch fencing (distsim tie-in): each tenant keeps an
// AP ledger whose fenced epoch mirrors its fleet epoch; a quote priced
// before another declare lands is refused settlement, never mispaid.
TEST(Fleet, LedgerFencesStaleQuotesPerTenant) {
  Fleet fleet;
  const auto g = tenant_graph(81);
  ASSERT_EQ(fleet.create_tenant(0, g, 0), Status::kOk);
  distsim::Ledger ledger(g.num_nodes(), /*master_seed=*/99);
  ledger.fund_all(1000.0);

  const Response old_quote = fleet.call(quote_req(0, 6, graph::kInvalidNode));
  ASSERT_EQ(old_quote.status, Status::kOk);
  ASSERT_TRUE(old_quote.quote.has_value());

  const Response decl = fleet.call(declare_req(0, 3, 7.75));
  ASSERT_EQ(decl.status, Status::kOk);
  ledger.set_profile_epoch(decl.epoch);

  const auto sig =
      distsim::sign(ledger.key_of(6), distsim::packet_payload(1, 6, 0));
  const auto stale = ledger.settle_quote(1, 0, sig, *old_quote.quote);
  EXPECT_FALSE(stale.accepted);
  EXPECT_EQ(stale.reject_reason, "stale quote epoch");

  // The refused attempt recorded nothing, so the same packet id can be
  // settled once the client re-quotes at the fenced epoch.
  const Response fresh = fleet.call(quote_req(0, 6, graph::kInvalidNode));
  ASSERT_EQ(fresh.status, Status::kOk);
  ASSERT_TRUE(fresh.quote.has_value());
  EXPECT_TRUE(ledger.settle_quote(1, 0, sig, *fresh.quote).accepted);
}

// Many-tenant reader/writer stress; run under TSan this exercises the
// submit-side admission state, the shard mailboxes, and the per-tenant
// engine affinity all at once.
TEST(Fleet, ManyTenantConcurrentStress) {
  constexpr TenantId kTenants = 24;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 150;
  Config config;
  config.fleet.shards = 4;
  Fleet fleet(config);
  for (TenantId t = 0; t < kTenants; ++t) {
    ASSERT_EQ(fleet.create_tenant(t, tenant_graph(100 + t, 16), 0),
              Status::kOk);
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int c = 0; c < kThreads; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(0xabcd00ULL + static_cast<std::uint64_t>(c));
      std::vector<std::future<Response>> inflight;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto tenant =
            static_cast<TenantId>(rng.next_below(kTenants));
        if (rng.next_below(4) == 0) {
          const auto v = static_cast<NodeId>(1 + rng.next_below(15));
          inflight.push_back(
              fleet.submit(declare_req(tenant, v, rng.uniform(0.5, 8.0))));
        } else {
          const auto s = static_cast<NodeId>(1 + rng.next_below(15));
          inflight.push_back(fleet.submit(
              quote_req(tenant, s, graph::kInvalidNode,
                        rng.next_below(2) == 0 ? Priority::kInteractive
                                               : Priority::kBatch)));
        }
      }
      for (auto& f : inflight) {
        const Response r = f.get();
        // Every future resolves with a typed status; under stress some
        // may legitimately shed, but nothing may error out or hang.
        if (r.status != Status::kOk &&
            r.status != Status::kShedQueueFull &&
            r.status != Status::kShedWatermark &&
            r.status != Status::kExpiredDeadline) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Conservation: every submitted request is accounted to exactly one
  // outcome counter.
  const auto m = fleet.metrics();
  EXPECT_EQ(m.submitted, m.served + m.declares + m.admin +
                             m.shed_queue_full + m.shed_watermark +
                             m.throttled + m.expired + m.rejected);
  EXPECT_EQ(m.admin, kTenants);
  EXPECT_FALSE(m.tenants.empty());
}

}  // namespace
}  // namespace tc::svc
