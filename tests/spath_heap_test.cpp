#include "spath/heap.hpp"

#include <gtest/gtest.h>

#include "spath/pairing_heap.hpp"

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace tc::spath {
namespace {

TEST(BinaryHeap, EmptyInitially) {
  BinaryHeap h(10);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
}

TEST(BinaryHeap, PushPopSingle) {
  BinaryHeap h(4);
  h.push_or_decrease(2, 5.0);
  EXPECT_TRUE(h.contains(2));
  const auto [p, k] = h.pop_min();
  EXPECT_EQ(k, 2u);
  EXPECT_DOUBLE_EQ(p, 5.0);
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.contains(2));
}

TEST(BinaryHeap, PopsInPriorityOrder) {
  BinaryHeap h(5);
  h.push_or_decrease(0, 3.0);
  h.push_or_decrease(1, 1.0);
  h.push_or_decrease(2, 2.0);
  EXPECT_EQ(h.pop_min().second, 1u);
  EXPECT_EQ(h.pop_min().second, 2u);
  EXPECT_EQ(h.pop_min().second, 0u);
}

TEST(BinaryHeap, DecreaseKeyReorders) {
  BinaryHeap h(3);
  h.push_or_decrease(0, 10.0);
  h.push_or_decrease(1, 5.0);
  h.push_or_decrease(0, 1.0);  // decrease
  EXPECT_DOUBLE_EQ(h.priority_of(0), 1.0);
  EXPECT_EQ(h.pop_min().second, 0u);
}

TEST(BinaryHeap, EqualPrioritiesAllPopped) {
  BinaryHeap h(4);
  for (graph::NodeId k = 0; k < 4; ++k) h.push_or_decrease(k, 7.0);
  std::vector<graph::NodeId> popped;
  while (!h.empty()) popped.push_back(h.pop_min().second);
  std::sort(popped.begin(), popped.end());
  EXPECT_EQ(popped, (std::vector<graph::NodeId>{0, 1, 2, 3}));
}

template <typename Heap>
void random_sort_check(std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t n = 500;
  Heap h(n);
  std::vector<double> priorities(n);
  for (std::size_t k = 0; k < n; ++k) {
    priorities[k] = rng.uniform(0.0, 100.0);
    h.push_or_decrease(static_cast<graph::NodeId>(k), priorities[k] + 50.0);
  }
  // Random decreases down to final priority.
  for (std::size_t k = 0; k < n; ++k) {
    h.push_or_decrease(static_cast<graph::NodeId>(k), priorities[k]);
  }
  double prev = -1.0;
  std::size_t count = 0;
  while (!h.empty()) {
    const auto [p, k] = h.pop_min();
    EXPECT_GE(p, prev);
    EXPECT_DOUBLE_EQ(p, priorities[k]);
    prev = p;
    ++count;
  }
  EXPECT_EQ(count, n);
}

TEST(BinaryHeap, RandomizedHeapSort) { random_sort_check<BinaryHeap>(17); }
TEST(QuadHeap, RandomizedHeapSort) { random_sort_check<QuadHeap>(18); }
TEST(PairingHeap, RandomizedHeapSort) { random_sort_check<PairingHeap>(19); }

TEST(PairingHeap, BasicOperations) {
  PairingHeap h(5);
  EXPECT_TRUE(h.empty());
  h.push_or_decrease(3, 7.0);
  h.push_or_decrease(1, 9.0);
  h.push_or_decrease(4, 8.0);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_TRUE(h.contains(3));
  EXPECT_DOUBLE_EQ(h.priority_of(1), 9.0);
  h.push_or_decrease(1, 1.0);  // decrease to the top
  EXPECT_EQ(h.pop_min().second, 1u);
  EXPECT_EQ(h.pop_min().second, 3u);
  EXPECT_EQ(h.pop_min().second, 4u);
  EXPECT_TRUE(h.empty());
}

TEST(PairingHeap, DecreaseDeepNode) {
  // Build a heap with structure, then decrease a deep non-root node.
  PairingHeap h(8);
  for (graph::NodeId k = 0; k < 8; ++k) {
    h.push_or_decrease(k, 10.0 + k);
  }
  EXPECT_EQ(h.pop_min().second, 0u);  // forces two-pass restructuring
  h.push_or_decrease(7, 0.5);
  EXPECT_EQ(h.pop_min().second, 7u);
  EXPECT_EQ(h.pop_min().second, 1u);
}

TEST(PairingHeap, ReinsertAfterPop) {
  PairingHeap h(3);
  h.push_or_decrease(0, 1.0);
  EXPECT_EQ(h.pop_min().second, 0u);
  h.push_or_decrease(0, 2.0);  // higher priority is fine on reinsert
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.pop_min().second, 0u);
}

TEST(PairingHeap, MatchesBinaryOnInterleavedOps) {
  util::Rng rng(33);
  BinaryHeap b(200);
  PairingHeap p(200);
  std::vector<double> prio(200, 1e18);
  for (int step = 0; step < 3000; ++step) {
    if (!b.empty() && rng.bernoulli(0.3)) {
      const auto [bp, bk] = b.pop_min();
      const auto [pp, pk] = p.pop_min();
      EXPECT_DOUBLE_EQ(bp, pp);
      prio[bk] = 1e18;
      // Keys with equal priorities may pop in different orders; priorities
      // themselves must match. Re-sync by asserting sets are consistent:
      if (bk != pk) {
        EXPECT_DOUBLE_EQ(prio[bk], 1e18);
      }
    } else {
      const auto k = static_cast<graph::NodeId>(rng.next_below(200));
      const double new_p = rng.uniform(0.0, 100.0);
      const bool in_b = b.contains(k);
      EXPECT_EQ(in_b, p.contains(k));
      if (in_b && new_p > prio[k]) continue;  // never raise
      prio[k] = new_p;
      b.push_or_decrease(k, new_p);
      p.push_or_decrease(k, new_p);
    }
  }
}

TEST(QuadHeap, MatchesBinaryOrdering) {
  util::Rng rng(9);
  BinaryHeap b(100);
  QuadHeap q(100);
  for (graph::NodeId k = 0; k < 100; ++k) {
    const double p = rng.uniform(0.0, 10.0);
    b.push_or_decrease(k, p);
    q.push_or_decrease(k, p);
  }
  while (!b.empty()) {
    ASSERT_FALSE(q.empty());
    EXPECT_DOUBLE_EQ(b.pop_min().first, q.pop_min().first);
  }
  EXPECT_TRUE(q.empty());
}

TEST(BinaryHeap, InterleavedPushPop) {
  BinaryHeap h(6);
  h.push_or_decrease(0, 4.0);
  h.push_or_decrease(1, 2.0);
  EXPECT_EQ(h.pop_min().second, 1u);
  h.push_or_decrease(2, 1.0);
  h.push_or_decrease(3, 3.0);
  EXPECT_EQ(h.pop_min().second, 2u);
  h.push_or_decrease(1, 0.5);  // reinsert a previously popped key
  EXPECT_EQ(h.pop_min().second, 1u);
  EXPECT_EQ(h.pop_min().second, 3u);
  EXPECT_EQ(h.pop_min().second, 0u);
}

}  // namespace
}  // namespace tc::spath
