#include "distsim/crypto.hpp"

#include <gtest/gtest.h>

namespace tc::distsim {
namespace {

TEST(Crypto, SignVerifyRoundTrip) {
  const SigningKey key = derive_key(42, 7);
  const Signature sig = sign(key, "hello");
  EXPECT_TRUE(verify(key, "hello", sig));
}

TEST(Crypto, TamperedPayloadRejected) {
  const SigningKey key = derive_key(42, 7);
  const Signature sig = sign(key, "pay relay 5 units");
  EXPECT_FALSE(verify(key, "pay relay 9 units", sig));
}

TEST(Crypto, WrongKeyRejected) {
  const Signature sig = sign(derive_key(42, 7), "msg");
  EXPECT_FALSE(verify(derive_key(42, 8), "msg", sig));
  EXPECT_FALSE(verify(derive_key(43, 7), "msg", sig));
}

TEST(Crypto, KeysDeterministic) {
  EXPECT_EQ(derive_key(1, 2).secret, derive_key(1, 2).secret);
  EXPECT_NE(derive_key(1, 2).secret, derive_key(1, 3).secret);
  EXPECT_NE(derive_key(1, 2).secret, derive_key(2, 2).secret);
}

TEST(Crypto, EmptyPayloadSignable) {
  const SigningKey key = derive_key(9, 0);
  EXPECT_TRUE(verify(key, "", sign(key, "")));
}

TEST(Crypto, PacketPayloadCanonical) {
  EXPECT_EQ(packet_payload(10, 3, 99), "pkt:10:3:99");
  EXPECT_NE(packet_payload(10, 3, 99), packet_payload(10, 3, 98));
  // No ambiguity between (1, 23) and (12, 3).
  EXPECT_NE(packet_payload(1, 23, 4), packet_payload(12, 3, 4));
}

TEST(Crypto, SignatureSensitiveToEveryByte) {
  const SigningKey key = derive_key(5, 5);
  const Signature base = sign(key, "abcdef");
  EXPECT_NE(base.tag, sign(key, "abcdeg").tag);
  EXPECT_NE(base.tag, sign(key, "abcde").tag);
  EXPECT_NE(base.tag, sign(key, "Abcdef").tag);
}

}  // namespace
}  // namespace tc::distsim
