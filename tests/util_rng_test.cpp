#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace tc::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(300.0, 500.0);
    EXPECT_GE(x, 300.0);
    EXPECT_LT(x, 500.0);
  }
}

TEST(Rng, UniformMeanApproximatelyCentered) {
  Rng rng(13);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.uniform(0.0, 10.0);
  EXPECT_NEAR(sum / trials, 5.0, 0.05);
}

TEST(Rng, NextBelowBounds) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(37), 37u);
}

TEST(Rng, NextBelowZeroBound) {
  Rng rng(17);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(23);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int heads = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) heads += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(37);
  double sum = 0.0, sum2 = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / trials;
  const double var = sum2 / trials - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, SplitIndependentOfParentConsumption) {
  // split() must not perturb the parent stream, and children of equal keys
  // from equal states must coincide.
  Rng parent(99);
  Rng child1 = parent.split(5);
  const std::uint64_t next = parent.next_u64();
  Rng parent2(99);
  Rng child2 = parent2.split(5);
  EXPECT_EQ(child1.next_u64(), child2.next_u64());
  EXPECT_EQ(parent2.next_u64(), next);
}

TEST(Rng, SplitDifferentKeysDiverge) {
  Rng parent(99);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(43);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);
}

TEST(Rng, Mix64Deterministic) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
}

class RngBoundParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundParam, NextBelowAlwaysInRange) {
  Rng rng(GetParam() * 31 + 7);
  const std::uint64_t bound = GetParam();
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundParam,
                         ::testing::Values(1, 2, 3, 10, 100, 1000, 1u << 20));

}  // namespace
}  // namespace tc::util
