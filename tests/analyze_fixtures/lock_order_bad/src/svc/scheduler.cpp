// Seeded violation: the steal/route lock acquired while a shard's
// scheduler mutex is held — the reverse of the fleet's lock order
// (route/steal strictly before sched/mailbox), which deadlocks against
// a concurrent steal that took the locks in the documented direction.
namespace util {
struct Mutex {};
struct SharedMutex {};
struct MutexLock {
  explicit MutexLock(Mutex&) {}
};
struct SharedMutexLock {
  explicit SharedMutexLock(SharedMutex&) {}
};
}  // namespace util

namespace svc {

struct Shard {
  util::Mutex sched_mutex;
  int queued = 0;
};

util::SharedMutex route_mutex_;
int route_table = 0;

int rebalance(Shard& shard) {
  util::MutexLock sched(shard.sched_mutex);
  // BAD: taking the ownership lock inside the sched scope.
  util::SharedMutexLock route(route_mutex_);
  route_table += shard.queued;
  return route_table;
}

}  // namespace svc
