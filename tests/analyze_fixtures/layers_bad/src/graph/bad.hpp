// Seeded violation: a back-edge include. graph/ is below svc/ in the
// layer DAG and must not reach up into the serving layer.
#pragma once

#include "svc/engine.hpp"

inline int graph_using_svc() { return engine_id(); }
