// Seeded violation: a lock acquired below the pricing entry point. The
// reader path must stay lock-free; locks belong to the caching layers
// around it.
namespace util {
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex&) {}
};
}  // namespace util

namespace svc {

util::Mutex stats_mutex;
int hits = 0;

int record_hit() {
  util::MutexLock lock(stats_mutex);
  return ++hits;
}

double price(int source, int target) {
  record_hit();
  return static_cast<double>(source + target);
}

}  // namespace svc
