#pragma once

#include <atomic>

// The sanctioned mutable shape: an atomic CAS memo.
class Memo {
 public:
  int get() const { return cached_.load(); }

 private:
  mutable std::atomic<int> cached_{0};
};
