// A workspace kernel that only grows its caller-owned arena: arena
// growth (.resize/.push_back) is the point, not a violation.
#include <cstddef>
#include <vector>

namespace spath {

void solve_into(std::vector<int>& out, std::size_t n) {
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<int>(i);
  out.push_back(0);
}

}  // namespace spath
