// A lock-free pricing entry point over a frozen snapshot.
#include "util/memo.hpp"

namespace svc {

double price(const Memo& snapshot, int source, int target) {
  return static_cast<double>(snapshot.get() + source + target);
}

}  // namespace svc
