// Lock-order witness: the documented direction — the route/steal lock
// strictly before any shard scheduler mutex — must pass the lock-order
// rule, including a sched lock nested inside an open route scope.
namespace util {
struct Mutex {};
struct SharedMutex {};
struct MutexLock {
  explicit MutexLock(Mutex&) {}
};
struct SharedMutexLock {
  explicit SharedMutexLock(SharedMutex&) {}
};
}  // namespace util

namespace svc {

struct Shard {
  util::Mutex sched_mutex;
  int queued = 0;
};

util::SharedMutex route_mutex_;
int route_table = 0;

int steal_into(Shard& victim, Shard& thief) {
  util::SharedMutexLock route(route_mutex_);
  {
    util::MutexLock sched(victim.sched_mutex);
    thief.queued += victim.queued;
    victim.queued = 0;
  }
  {
    util::MutexLock sched(thief.sched_mutex);
    route_table += thief.queued;
  }
  return route_table;
}

}  // namespace svc
