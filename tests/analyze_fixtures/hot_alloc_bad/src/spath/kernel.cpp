// Seeded violation: a helper on the workspace-kernel call path builds a
// fresh std::vector per call instead of reusing a grow-only arena.
#include <cstddef>
#include <vector>

namespace spath {

int scratch_sum(std::size_t n) {
  std::vector<int> scratch(n, 1);
  int total = 0;
  for (int v : scratch) total += v;
  return total;
}

int relax_all(std::size_t n) { return scratch_sum(n); }

void solve_into(std::vector<int>& out, std::size_t n) {
  out.resize(n);
  out[0] = relax_all(n);
}

}  // namespace spath
