// Seeded violation: a multi-source batched kernel whose per-root helper
// materializes a fresh std::vector per root instead of streaming into the
// caller's grow-only matrix rows. The hot-alloc rule must reach it from
// the spt_multi_into root (any *_into function is a root).
#include <cstddef>
#include <vector>

namespace spath {

int solve_row(std::size_t n) {
  std::vector<double> row(n, 0.0);  // per-root allocation on the hot path
  int settled = 0;
  for (double d : row) settled += d == 0.0 ? 1 : 0;
  return settled;
}

void spt_multi_into(std::vector<int>& out, std::size_t roots, std::size_t n) {
  out.resize(roots);  // grow-only matrix storage: allowed
  for (std::size_t i = 0; i < roots; ++i) out[i] = solve_row(n);
}

}  // namespace spath
