// Seeded violation: a mutable non-atomic cache mutated through a const
// accessor — invisible to callers, racy the moment readers share it.
#pragma once

class Cache {
 public:
  int value() const {
    if (!filled_) {
      cached_ = 42;
      filled_ = true;
    }
    return cached_;
  }

 private:
  mutable int cached_ = 0;
  mutable bool filled_ = false;
};
