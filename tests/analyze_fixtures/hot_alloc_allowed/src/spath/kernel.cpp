// Same per-call allocation as hot_alloc_bad, but waived with a
// justification (e.g. a cold path that only runs once per rebuild).
#include <cstddef>
#include <vector>

namespace spath {

int scratch_sum(std::size_t n) {
  // tc-analyze: allow(hot-alloc) one-time cold-path rebuild, fixture
  std::vector<int> scratch(n, 1);
  int total = 0;
  for (int v : scratch) total += v;
  return total;
}

void solve_into(std::vector<int>& out, std::size_t n) {
  out.resize(n);
  out[0] = scratch_sum(n);
}

}  // namespace spath
