#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace tc::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(4.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.mean(), 4.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 4.0);
  EXPECT_EQ(acc.max(), 4.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, / 7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Rng rng(5);
  Accumulator whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 20.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Accumulator, NumericallyStableLargeOffset) {
  // Welford should not catastrophically cancel with a large common offset.
  Accumulator acc;
  const double offset = 1e9;
  for (double x : {1.0, 2.0, 3.0}) acc.add(offset + x);
  EXPECT_NEAR(acc.variance(), 1.0, 1e-6);
}

TEST(Summary, ToStringContainsFields) {
  Accumulator acc;
  acc.add(1.0);
  acc.add(2.0);
  const std::string s = acc.summary().to_string();
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("mean="), std::string::npos);
}

TEST(Percentiles, SingleSample) {
  Percentiles p;
  p.add(7.0);
  EXPECT_EQ(p.percentile(0), 7.0);
  EXPECT_EQ(p.percentile(50), 7.0);
  EXPECT_EQ(p.percentile(100), 7.0);
}

TEST(Percentiles, MedianOfOddCount) {
  Percentiles p;
  for (double x : {5.0, 1.0, 3.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
}

TEST(Percentiles, InterpolatesBetweenSamples) {
  Percentiles p;
  p.add(0.0);
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(p.percentile(25), 2.5);
}

TEST(Percentiles, ExtremesAreMinMax) {
  Percentiles p;
  Rng rng(9);
  double lo = 1e18, hi = -1e18;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(-50.0, 50.0);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    p.add(x);
  }
  EXPECT_DOUBLE_EQ(p.percentile(0), lo);
  EXPECT_DOUBLE_EQ(p.percentile(100), hi);
}

TEST(Percentiles, AddAfterQueryResorts) {
  Percentiles p;
  p.add(1.0);
  p.add(3.0);
  EXPECT_DOUBLE_EQ(p.median(), 2.0);
  p.add(100.0);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
}

TEST(BootstrapCi, SingleSampleDegenerate) {
  const auto ci = bootstrap_mean_ci({3.0});
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_DOUBLE_EQ(ci.lo, 3.0);
  EXPECT_DOUBLE_EQ(ci.hi, 3.0);
}

TEST(BootstrapCi, BracketsTheMean) {
  Rng rng(77);
  std::vector<double> samples;
  for (int i = 0; i < 100; ++i) samples.push_back(rng.uniform(1.0, 2.0));
  const auto ci = bootstrap_mean_ci(samples);
  EXPECT_GE(ci.mean, ci.lo);
  EXPECT_LE(ci.mean, ci.hi);
  EXPECT_NEAR(ci.mean, 1.5, 0.05);
  // Half-width of a uniform(1,2) mean over 100 samples: ~1.96*0.289/10.
  EXPECT_NEAR(ci.half_width(), 0.057, 0.02);
}

TEST(BootstrapCi, DeterministicForSeed) {
  std::vector<double> samples{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto a = bootstrap_mean_ci(samples, 0.05, 500, 9);
  const auto b = bootstrap_mean_ci(samples, 0.05, 500, 9);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(BootstrapCi, TighterWithMoreSamples) {
  Rng rng(5);
  std::vector<double> small, large;
  for (int i = 0; i < 20; ++i) small.push_back(rng.uniform(0.0, 1.0));
  for (int i = 0; i < 2000; ++i) large.push_back(rng.uniform(0.0, 1.0));
  EXPECT_GT(bootstrap_mean_ci(small).half_width(),
            bootstrap_mean_ci(large).half_width());
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, CountsFallInCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.9);
  h.add(2.0);  // boundary goes to the upper bin
  h.add(9.99);
  EXPECT_DOUBLE_EQ(h.bin_count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_count(4), 1.0);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, WeightedAdds) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5, 2.5);
  EXPECT_DOUBLE_EQ(h.bin_count(1), 2.5);
  EXPECT_DOUBLE_EQ(h.total(), 2.5);
}

}  // namespace
}  // namespace tc::util
