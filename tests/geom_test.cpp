#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "geom/point.hpp"
#include "geom/spatial_grid.hpp"
#include "util/rng.hpp"

namespace tc::geom {
namespace {

TEST(Point, DistanceBasics) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(squared_distance({0, 0}, {3, 4}), 25.0);
}

TEST(Point, DistanceSymmetric) {
  Point a{2.5, -1.0}, b{-3.0, 7.0};
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
}

TEST(PathLoss, PowerLaw) {
  EXPECT_DOUBLE_EQ(path_loss(2.0, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(path_loss(2.0, 3.0), 8.0);
  EXPECT_DOUBLE_EQ(path_loss(10.0, 2.0, 5.0, 0.5), 55.0);
}

TEST(PathLoss, MonotoneInDistance) {
  double prev = 0.0;
  for (double d = 1.0; d < 10.0; d += 0.5) {
    const double p = path_loss(d, 2.5);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(SampleUniform, InRegionAndDeterministic) {
  const Region region{2000.0, 1000.0};
  auto pts1 = sample_uniform_points(500, region, 7);
  auto pts2 = sample_uniform_points(500, region, 7);
  ASSERT_EQ(pts1.size(), 500u);
  EXPECT_EQ(pts1[13].x, pts2[13].x);
  for (const Point& p : pts1) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 2000.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 1000.0);
  }
}

TEST(SampleUniform, DifferentSeedsDiffer) {
  const Region region{100.0, 100.0};
  auto a = sample_uniform_points(10, region, 1);
  auto b = sample_uniform_points(10, region, 2);
  EXPECT_FALSE(a[0] == b[0]);
}

// Brute-force reference for radius queries.
std::vector<std::size_t> brute_radius(const std::vector<Point>& pts,
                                      const Point& c, double r,
                                      std::size_t exclude) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i == exclude) continue;
    if (squared_distance(pts[i], c) <= r * r) out.push_back(i);
  }
  return out;
}

TEST(SpatialGrid, MatchesBruteForce) {
  const Region region{2000.0, 2000.0};
  auto pts = sample_uniform_points(400, region, 99);
  SpatialGrid grid(pts, region, 300.0);
  std::vector<std::size_t> got;
  for (std::size_t i = 0; i < pts.size(); i += 17) {
    got.clear();
    grid.query_radius(pts[i], 300.0, i, got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, brute_radius(pts, pts[i], 300.0, i)) << "query " << i;
  }
}

TEST(SpatialGrid, RadiusLargerThanCell) {
  const Region region{1000.0, 1000.0};
  auto pts = sample_uniform_points(200, region, 5);
  SpatialGrid grid(pts, region, 100.0);  // cell smaller than query radius
  std::vector<std::size_t> got;
  grid.query_radius(pts[0], 450.0, 0, got);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, brute_radius(pts, pts[0], 450.0, 0));
}

TEST(SpatialGrid, ZeroRadiusFindsOnlyCoincident) {
  std::vector<Point> pts{{1, 1}, {1, 1}, {2, 2}};
  SpatialGrid grid(pts, {10, 10}, 1.0);
  std::vector<std::size_t> got;
  grid.query_radius(pts[0], 0.0, 0, got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 1u);
}

TEST(SpatialGrid, ExcludeSentinelKeepsAll) {
  std::vector<Point> pts{{0, 0}, {1, 0}};
  SpatialGrid grid(pts, {10, 10}, 5.0);
  std::vector<std::size_t> got;
  grid.query_radius({0, 0}, 2.0, static_cast<std::size_t>(-1), got);
  EXPECT_EQ(got.size(), 2u);
}

TEST(SpatialGrid, QueryNearBoundary) {
  const Region region{100.0, 100.0};
  std::vector<Point> pts{{0.5, 0.5}, {99.5, 99.5}, {0.5, 99.5}};
  SpatialGrid grid(pts, region, 30.0);
  std::vector<std::size_t> got;
  grid.query_radius({0.0, 0.0}, 1.0, static_cast<std::size_t>(-1), got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 0u);
  got.clear();
  grid.query_radius({100.0, 100.0}, 1.0, static_cast<std::size_t>(-1), got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 1u);
}

class GridCellSizeParam : public ::testing::TestWithParam<double> {};

TEST_P(GridCellSizeParam, CorrectForAnyCellSize) {
  const Region region{500.0, 500.0};
  auto pts = sample_uniform_points(150, region, 31);
  SpatialGrid grid(pts, region, GetParam());
  std::vector<std::size_t> got;
  for (std::size_t i = 0; i < 10; ++i) {
    got.clear();
    grid.query_radius(pts[i], 120.0, i, got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, brute_radius(pts, pts[i], 120.0, i));
  }
}

INSTANTIATE_TEST_SUITE_P(CellSizes, GridCellSizeParam,
                         ::testing::Values(10.0, 50.0, 120.0, 300.0, 1000.0));

}  // namespace
}  // namespace tc::geom
