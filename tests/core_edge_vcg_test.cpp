// Edge-agent VCG (Nisan-Ronen baseline): naive vs fast differential plus
// structural properties.
#include "core/edge_vcg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fast_link_payment.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace tc::core {
namespace {

using graph::Cost;
using graph::NodeId;

graph::LinkGraph symmetric_random(std::size_t n, int edges,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  graph::LinkGraphBuilder b(n);
  for (int e = 0; e < edges; ++e) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    const double w = rng.uniform(0.2, 6.0);
    b.add_link(u, v, w, w);
  }
  return b.build();
}

void expect_same(const EdgeVcgResult& a, const EdgeVcgResult& b,
                 const std::string& context) {
  ASSERT_EQ(a.path, b.path) << context;
  ASSERT_EQ(a.payments.size(), b.payments.size()) << context;
  for (std::size_t i = 0; i < a.payments.size(); ++i) {
    EXPECT_EQ(a.payments[i].u, b.payments[i].u) << context;
    EXPECT_EQ(a.payments[i].v, b.payments[i].v) << context;
    if (std::isinf(a.payments[i].payment) ||
        std::isinf(b.payments[i].payment)) {
      EXPECT_EQ(std::isinf(a.payments[i].payment),
                std::isinf(b.payments[i].payment))
          << context << " edge " << i;
    } else {
      EXPECT_NEAR(a.payments[i].payment, b.payments[i].payment, 1e-9)
          << context << " edge " << i;
    }
  }
}

TEST(EdgeVcg, DiamondExact) {
  graph::LinkGraphBuilder b(4);
  b.add_link(0, 1, 1.0, 1.0).add_link(1, 3, 2.0, 2.0);
  b.add_link(0, 2, 2.0, 2.0).add_link(2, 3, 3.0, 3.0);
  const auto g = b.build();
  const auto r = edge_vcg_payments_naive(g, 0, 3);
  ASSERT_EQ(r.path, (std::vector<NodeId>{0, 1, 3}));
  ASSERT_EQ(r.payments.size(), 2u);
  // Removing either path edge forces the 5-cost detour: p = 5 - 3 + w.
  EXPECT_DOUBLE_EQ(r.payments[0].payment, 3.0);  // w=1
  EXPECT_DOUBLE_EQ(r.payments[1].payment, 4.0);  // w=2
  EXPECT_DOUBLE_EQ(r.total_payment(), 7.0);
}

TEST(EdgeVcg, BridgeEdgeInfinite) {
  graph::LinkGraphBuilder b(3);
  b.add_link(0, 1, 1.0, 1.0).add_link(1, 2, 1.0, 1.0);
  const auto g = b.build();
  const auto r = edge_vcg_payments_naive(g, 0, 2);
  for (const auto& p : r.payments) EXPECT_TRUE(std::isinf(p.payment));
}

TEST(EdgeVcg, PaymentAtLeastDeclared) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto g = symmetric_random(20, 60, seed);
    const auto r = edge_vcg_payments_naive(g, 1, 0);
    if (!r.connected()) continue;
    for (const auto& p : r.payments) {
      if (std::isinf(p.payment)) continue;
      EXPECT_GE(p.payment, p.declared - 1e-12);
    }
  }
}

TEST(EdgeVcg, RejectsAsymmetric) {
  graph::LinkGraphBuilder b(3);
  b.add_link(0, 1, 1.0, 2.0).add_link(1, 2, 1.0, 1.0);
  const auto g = b.build();
  EXPECT_THROW(edge_vcg_payments_naive(g, 0, 2), std::invalid_argument);
  EXPECT_THROW(edge_vcg_payments_fast(g, 0, 2), std::invalid_argument);
}

TEST(EdgeVcg, FastMatchesNaiveRandom) {
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const auto g = symmetric_random(22, 66, seed * 13);
    util::Rng rng(seed);
    const auto s = static_cast<NodeId>(rng.next_below(22));
    const auto t = static_cast<NodeId>(rng.next_below(22));
    if (s == t) continue;
    expect_same(edge_vcg_payments_naive(g, s, t),
                edge_vcg_payments_fast(g, s, t),
                "seed " + std::to_string(seed));
    ++checked;
  }
  EXPECT_GT(checked, 40);
}

TEST(EdgeVcg, FastMatchesNaiveUnitDisk) {
  graph::UdgParams params;
  params.n = 100;
  params.region = {900.0, 900.0};
  params.range_m = 220.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto g = graph::make_unit_disk_link(params, seed);
    expect_same(edge_vcg_payments_naive(g, 7, 0),
                edge_vcg_payments_fast(g, 7, 0),
                "udg seed " + std::to_string(seed));
  }
}

TEST(EdgeVcg, FastMatchesNaiveSparse) {
  // Sparse graphs exercise bridge (infinite) detours.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto g = symmetric_random(16, 20, seed * 7 + 3);
    expect_same(edge_vcg_payments_naive(g, 1, 0),
                edge_vcg_payments_fast(g, 1, 0),
                "sparse seed " + std::to_string(seed));
  }
}

TEST(EdgeVcg, NodeAgentPaymentsDominateEdgeAgents) {
  // On a lifted node-cost graph, removing a node removes *all* its edges,
  // so the node-agent avoiding path is at least as expensive: per-hop,
  // node payments >= corresponding edge payments. (Sanity relation
  // between the paper's model and the Nisan-Ronen baseline.)
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed);
    graph::LinkGraphBuilder b(18);
    for (int e = 0; e < 60; ++e) {
      const auto u = static_cast<NodeId>(rng.next_below(18));
      const auto v = static_cast<NodeId>(rng.next_below(18));
      if (u == v) continue;
      const double w = rng.uniform(0.5, 4.0);
      b.add_link(u, v, w, w);
    }
    const auto g = b.build();
    const auto edges = edge_vcg_payments_fast(g, 1, 0);
    if (!edges.connected()) continue;
    const auto nodes = fast_link_payments(g, 1, 0);
    ASSERT_EQ(nodes.path, edges.path);
    // Edge e_l = (r_l, r_{l+1}) carries relay r_l's forwarding arc; the
    // node payment to r_l covers at least that edge's payment for
    // interior l >= 1.
    for (std::size_t l = 1; l + 1 < edges.path.size(); ++l) {
      const NodeId relay = edges.path[l];
      if (std::isinf(nodes.payments[relay])) continue;
      EXPECT_GE(nodes.payments[relay], edges.payments[l].payment - 1e-9)
          << "seed " << seed << " hop " << l;
    }
  }
}

}  // namespace
}  // namespace tc::core
