// Property tests for spath::CostDelta: a repaired SPT must be
// bit-identical (memcmp on dists and parents) to a from-scratch
// `dijkstra_*_into` solve on the updated graph, across seeded random
// churn covering increases, decreases, disconnects (cost -> inf), and
// reconnects (inf -> finite), chained repair-on-repair included. The
// generators draw continuous random costs, so shortest paths are unique
// almost surely and parents are pinned down (see cost_delta.hpp).
#include "spath/cost_delta.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "graph/generators.hpp"
#include "spath/dijkstra.hpp"
#include "spath/workspace.hpp"
#include "util/rng.hpp"

namespace tc::spath {
namespace {

using graph::Cost;
using graph::kInfCost;
using graph::NodeId;

void expect_bits_equal(const std::vector<Cost>& a, const std::vector<Cost>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(Cost)), 0);
}

void expect_same_spt(const SptResult& a, const SptResult& b) {
  EXPECT_EQ(a.source, b.source);
  expect_bits_equal(a.dist, b.dist);
  EXPECT_EQ(a.parent, b.parent);
}

/// Change-kind coverage counters; every kind must occur in a churn run.
struct ChangeKinds {
  std::size_t increases = 0;
  std::size_t decreases = 0;
  std::size_t disconnects = 0;
  std::size_t reconnects = 0;
  std::size_t noops = 0;

  void expect_all_covered() const {
    EXPECT_GT(increases, 0u);
    EXPECT_GT(decreases, 0u);
    EXPECT_GT(disconnects, 0u);
    EXPECT_GT(reconnects, 0u);
    EXPECT_GT(noops, 0u);
  }
};

/// Draws the next cost for a churn step: mostly scalings, sometimes a
/// disconnect, a fresh value, or an exact no-op; anything applied to a
/// currently-infinite cost is a reconnect.
Cost next_cost(util::Rng& rng, Cost c_old, ChangeKinds& kinds) {
  if (!graph::finite_cost(c_old)) {
    ++kinds.reconnects;
    return rng.uniform(0.1, 9.0);
  }
  switch (rng.next_below(6)) {
    case 0:
    case 1:
      ++kinds.increases;
      return c_old * rng.uniform(1.05, 4.0);
    case 2:
    case 3:
      ++kinds.decreases;
      return c_old * rng.uniform(0.2, 0.95);
    case 4:
      ++kinds.disconnects;
      return kInfCost;
    default:
      ++kinds.noops;
      return c_old;
  }
}

TEST(CostDeltaNode, ChurnRepairsMatchFreshSolveBitForBit) {
  DijkstraWorkspace ws;
  DijkstraWorkspace ws_fresh;
  ChangeKinds kinds;
  std::size_t cases = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    // p below the connectivity threshold for some seeds, so disconnected
    // components and unreached nodes are exercised too.
    graph::NodeGraph g = graph::make_erdos_renyi(56, 0.08, 0.1, 9.0, seed);
    const std::size_t n = g.num_nodes();
    const NodeId source = static_cast<NodeId>(seed % n);
    CostDelta delta;
    delta.solve_node(g, source, ws);
    util::Rng rng(seed * 977 + 5);
    for (int step = 0; step < 10; ++step) {
      const NodeId v = static_cast<NodeId>(rng.next_below(n));
      const Cost c_old = g.node_cost(v);
      g.set_node_cost(v, next_cost(rng, c_old, kinds));
      delta.apply_node_cost(g, v, c_old, ws);
      dijkstra_node_into(ws_fresh, g, source);
      expect_same_spt(delta.spt(), ws_fresh.to_result());
      EXPECT_LE(delta.last_affected(), n);
      ++cases;
    }
  }
  EXPECT_GE(cases, 100u);
  kinds.expect_all_covered();
}

TEST(CostDeltaNode, SourceCostChangeIsNoOp) {
  DijkstraWorkspace ws;
  graph::NodeGraph g = graph::make_erdos_renyi(40, 0.15, 0.1, 9.0, 11);
  const NodeId source = 3;
  CostDelta delta;
  delta.solve_node(g, source, ws);
  const SptResult before = delta.spt();
  const Cost c_old = g.node_cost(source);
  g.set_node_cost(source, c_old * 10.0);
  delta.apply_node_cost(g, source, c_old, ws);
  EXPECT_EQ(delta.last_affected(), 0u);
  expect_same_spt(delta.spt(), before);
  // The fresh solve agrees: the source's own cost is on no path from it.
  dijkstra_node_into(ws, g, source);
  expect_same_spt(delta.spt(), ws.to_result());
}

TEST(CostDeltaNode, UnreachedNodeChangeIsNoOp) {
  DijkstraWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    // Sparse enough that most seeds leave nodes unreached.
    graph::NodeGraph g = graph::make_erdos_renyi(40, 0.04, 0.1, 9.0, seed);
    const NodeId source = 0;
    CostDelta delta;
    delta.solve_node(g, source, ws);
    NodeId unreached = graph::kInvalidNode;
    for (NodeId v = 1; v < g.num_nodes(); ++v) {
      if (!delta.spt().reached(v)) {
        unreached = v;
        break;
      }
    }
    if (unreached == graph::kInvalidNode) continue;
    const SptResult before = delta.spt();
    const Cost c_old = g.node_cost(unreached);
    g.set_node_cost(unreached, c_old * 0.5);
    delta.apply_node_cost(g, unreached, c_old, ws);
    EXPECT_EQ(delta.last_affected(), 0u);
    expect_same_spt(delta.spt(), before);
  }
}

TEST(CostDeltaNode, DisconnectThenReconnectRoundTrips) {
  DijkstraWorkspace ws;
  DijkstraWorkspace ws_fresh;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    graph::NodeGraph g = graph::make_erdos_renyi(48, 0.10, 0.1, 9.0, seed);
    const std::size_t n = g.num_nodes();
    const NodeId source = static_cast<NodeId>(seed % n);
    const NodeId v = static_cast<NodeId>((seed * 13 + 1) % n);
    if (v == source) continue;
    CostDelta delta;
    delta.solve_node(g, source, ws);
    const SptResult before = delta.spt();
    const Cost c_orig = g.node_cost(v);

    g.set_node_cost(v, kInfCost);
    delta.apply_node_cost(g, v, c_orig, ws);
    dijkstra_node_into(ws_fresh, g, source);
    expect_same_spt(delta.spt(), ws_fresh.to_result());

    g.set_node_cost(v, c_orig);
    delta.apply_node_cost(g, v, kInfCost, ws);
    expect_same_spt(delta.spt(), before);
  }
}

TEST(CostDeltaLink, ChurnRepairsMatchFreshSolveBitForBit) {
  DijkstraWorkspace ws;
  DijkstraWorkspace ws_fresh;
  ChangeKinds kinds;
  std::size_t cases = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    graph::HeteroParams params;
    params.n = 48;
    graph::LinkGraph g = graph::make_hetero_geometric(params, seed);
    const std::size_t n = g.num_nodes();
    const NodeId source = static_cast<NodeId>(seed % n);
    CostDelta delta;
    delta.solve_link(g, source, ws);
    util::Rng rng(seed * 31337 + 7);
    // Remember disconnected arcs so reconnects are exercised, not just
    // hoped for.
    std::vector<std::pair<NodeId, NodeId>> dark;
    for (int step = 0; step < 12; ++step) {
      NodeId u;
      NodeId w;
      if (!dark.empty() && rng.bernoulli(0.5)) {
        const std::size_t i = rng.next_below(dark.size());
        u = dark[i].first;
        w = dark[i].second;
        dark.erase(dark.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        u = static_cast<NodeId>(rng.next_below(n));
        if (g.out_degree(u) == 0) continue;
        w = g.out_arcs(u)[rng.next_below(g.out_degree(u))].to;
      }
      const Cost c_old = g.arc_cost(u, w);
      const Cost c_new = next_cost(rng, c_old, kinds);
      if (!graph::finite_cost(c_new)) dark.emplace_back(u, w);
      g.set_arc_cost(u, w, c_new);
      delta.apply_arc_cost(g, u, w, c_old, ws);
      dijkstra_link_into(ws_fresh, g, source);
      expect_same_spt(delta.spt(), ws_fresh.to_result());
      ++cases;
    }
  }
  EXPECT_GE(cases, 100u);
  kinds.expect_all_covered();
}

TEST(CostDeltaLink, NonTreeArcIncreaseIsNoOp) {
  DijkstraWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    graph::UdgParams params;
    params.n = 48;
    graph::LinkGraph g = graph::make_unit_disk_link(params, seed);
    const NodeId source = static_cast<NodeId>(seed % g.num_nodes());
    CostDelta delta;
    delta.solve_link(g, source, ws);
    // Find an arc not on the tree (parent[to] != from) and raise it.
    bool tested = false;
    for (NodeId u = 0; u < g.num_nodes() && !tested; ++u) {
      for (const graph::Arc& a : g.out_arcs(u)) {
        if (delta.spt().parent[a.to] == u) continue;
        const SptResult before = delta.spt();
        const Cost c_old = a.cost;
        g.set_arc_cost(u, a.to, c_old * 3.0);
        delta.apply_arc_cost(g, u, a.to, c_old, ws);
        EXPECT_EQ(delta.last_affected(), 0u);
        expect_same_spt(delta.spt(), before);
        g.set_arc_cost(u, a.to, c_old);
        delta.apply_arc_cost(g, u, a.to, c_old * 3.0, ws);
        tested = true;
        break;
      }
    }
    EXPECT_TRUE(tested);
  }
}

}  // namespace
}  // namespace tc::spath
