#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"

namespace tc::graph {
namespace {

TEST(Connectivity, PathIsConnected) {
  EXPECT_TRUE(is_connected(make_path(6)));
}

TEST(Connectivity, DisconnectedDetected) {
  NodeGraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  EXPECT_FALSE(is_connected(b.build()));
}

TEST(Connectivity, MaskedDisconnection) {
  const NodeGraph g = make_path(5);
  NodeMask m(5);
  m.block(2);
  EXPECT_FALSE(is_connected(g, m));
}

TEST(Connectivity, MaskedStillConnected) {
  const NodeGraph g = make_ring(5);
  NodeMask m(5);
  m.block(2);
  EXPECT_TRUE(is_connected(g, m));
}

TEST(Connectivity, SingleAllowedNodeIsConnected) {
  const NodeGraph g = make_path(3);
  NodeMask m(3);
  m.block(0);
  m.block(2);
  EXPECT_TRUE(is_connected(g, m));
}

TEST(ReachableFrom, MarksComponent) {
  NodeGraphBuilder b(5);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(3, 4);
  const auto seen = reachable_from(b.build(), 0);
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[2]);
  EXPECT_FALSE(seen[3]);
}

TEST(ArticulationPoints, PathInteriorAreCuts) {
  const auto cuts = articulation_points(make_path(5));
  EXPECT_EQ(cuts, (std::vector<NodeId>{1, 2, 3}));
}

TEST(ArticulationPoints, RingHasNone) {
  EXPECT_TRUE(articulation_points(make_ring(8)).empty());
}

TEST(ArticulationPoints, BridgeNode) {
  // Two triangles joined at node 2.
  NodeGraphBuilder b(5);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
  b.add_edge(2, 3).add_edge(3, 4).add_edge(4, 2);
  const auto cuts = articulation_points(b.build());
  EXPECT_EQ(cuts, (std::vector<NodeId>{2}));
}

TEST(ArticulationPoints, StarCenter) {
  NodeGraphBuilder b(5);
  for (NodeId v = 1; v < 5; ++v) b.add_edge(0, v);
  const auto cuts = articulation_points(b.build());
  EXPECT_EQ(cuts, (std::vector<NodeId>{0}));
}

TEST(Biconnected, RingYesPathNo) {
  EXPECT_TRUE(is_biconnected(make_ring(6)));
  EXPECT_FALSE(is_biconnected(make_path(6)));
}

TEST(Biconnected, RequiresThreeNodes) {
  EXPECT_FALSE(is_biconnected(make_path(2)));
}

TEST(Biconnected, DisconnectedIsNot) {
  NodeGraphBuilder b(6);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
  b.add_edge(3, 4).add_edge(4, 5).add_edge(5, 3);
  EXPECT_FALSE(is_biconnected(b.build()));
}

TEST(Biconnected, CompleteGraph) {
  EXPECT_TRUE(is_biconnected(make_complete(5)));
}

TEST(Biconnected, GridIsBiconnected) {
  EXPECT_TRUE(is_biconnected(make_grid(4, 5)));
}

TEST(ConnectedWithoutNode, MatchesArticulation) {
  const NodeGraph g = make_path(5);
  EXPECT_TRUE(connected_without_node(g, 0));
  EXPECT_FALSE(connected_without_node(g, 2));
}

TEST(ConnectedWithoutNeighborhood, RingFiveStillConnected) {
  // Removing N(v) from a 5-ring leaves a connected 2-path.
  EXPECT_TRUE(connected_without_neighborhood(make_ring(5), 0));
}

TEST(ConnectedWithoutNeighborhood, PathInteriorDisconnects) {
  // Removing N(2) = {1,2,3} from a 5-path strands {0} from {4}.
  EXPECT_FALSE(connected_without_neighborhood(make_path(5), 2));
  EXPECT_FALSE(neighborhood_removal_safe(make_path(5)));
}

TEST(ConnectedWithoutNeighborhood, LargeRingOk) {
  // A 6-ring leaves a connected 3-path after removing any N(v).
  EXPECT_TRUE(connected_without_neighborhood(make_ring(6), 0));
  EXPECT_TRUE(neighborhood_removal_safe(make_ring(6)));
}

TEST(ConnectedWithoutNeighborhood, CompleteGraphDegenerate) {
  // Removing N(v) from K_n removes everything; trivially "connected".
  EXPECT_TRUE(connected_without_neighborhood(make_complete(4), 0));
}

TEST(ArticulationPoints, RandomGraphCrossCheck) {
  // Differential: v is an articulation point iff removing it disconnects.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const NodeGraph g = make_erdos_renyi(24, 0.12, 1.0, 2.0, seed);
    if (!is_connected(g)) continue;
    const auto cuts = articulation_points(g);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const bool is_cut =
          std::find(cuts.begin(), cuts.end(), v) != cuts.end();
      EXPECT_EQ(is_cut, !connected_without_node(g, v))
          << "seed " << seed << " node " << v;
    }
  }
}

}  // namespace
}  // namespace tc::graph
