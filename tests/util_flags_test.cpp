#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace tc::util {
namespace {

Flags make_flags() {
  Flags f("test program");
  f.add_int("n", 100, "node count")
      .add_double("kappa", 2.0, "path loss exponent")
      .add_string("out", "results.csv", "output path")
      .add_bool("verbose", false, "chatty output");
  return f;
}

TEST(Flags, DefaultsWhenUnparsed) {
  Flags f = make_flags();
  const char* argv[] = {"prog"};
  EXPECT_TRUE(f.parse(1, argv));
  EXPECT_EQ(f.get_int("n"), 100);
  EXPECT_DOUBLE_EQ(f.get_double("kappa"), 2.0);
  EXPECT_EQ(f.get_string("out"), "results.csv");
  EXPECT_FALSE(f.get_bool("verbose"));
}

TEST(Flags, EqualsSyntax) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--n=250", "--kappa=2.5"};
  EXPECT_TRUE(f.parse(3, argv));
  EXPECT_EQ(f.get_int("n"), 250);
  EXPECT_DOUBLE_EQ(f.get_double("kappa"), 2.5);
}

TEST(Flags, SpaceSyntax) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--n", "42", "--out", "x.csv"};
  EXPECT_TRUE(f.parse(5, argv));
  EXPECT_EQ(f.get_int("n"), 42);
  EXPECT_EQ(f.get_string("out"), "x.csv");
}

TEST(Flags, BareBoolSetsTrue) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--verbose"};
  EXPECT_TRUE(f.parse(2, argv));
  EXPECT_TRUE(f.get_bool("verbose"));
}

TEST(Flags, BoolExplicitValues) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--verbose=true"};
  EXPECT_TRUE(f.parse(2, argv));
  EXPECT_TRUE(f.get_bool("verbose"));

  Flags f2 = make_flags();
  const char* argv2[] = {"prog", "--verbose=false"};
  EXPECT_TRUE(f2.parse(2, argv2));
  EXPECT_FALSE(f2.get_bool("verbose"));
}

TEST(Flags, UnknownFlagRejected) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(f.parse(2, argv));
}

TEST(Flags, BadIntRejected) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(f.parse(2, argv));
}

TEST(Flags, HelpReturnsFalse) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(f.parse(2, argv));
}

TEST(Flags, PositionalRejected) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(f.parse(2, argv));
}

TEST(Flags, NegativeNumbers) {
  Flags f("t");
  f.add_int("x", 0, "x").add_double("y", 0.0, "y");
  const char* argv[] = {"prog", "--x=-5", "--y=-2.5"};
  EXPECT_TRUE(f.parse(3, argv));
  EXPECT_EQ(f.get_int("x"), -5);
  EXPECT_DOUBLE_EQ(f.get_double("y"), -2.5);
}

}  // namespace
}  // namespace tc::util
