// End-to-end distributed sessions (stage 1 + stage 2 together).
#include "distsim/session.hpp"

#include <gtest/gtest.h>

#include "core/vcg_unicast.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace tc::distsim {
namespace {

using graph::NodeId;

TEST(Session, HonestSessionMatchesCentralizedMechanism) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto g = graph::make_erdos_renyi(16, 0.3, 0.5, 5.0, seed);
    if (!graph::is_connected(g)) continue;
    SessionConfig config;
    const SessionResult session = run_session(g, 0, g.costs(), 5, config);
    const auto central = core::vcg_payments_naive(g, 5, 0);
    ASSERT_TRUE(central.connected());
    if (std::isinf(central.total_payment())) continue;
    ASSERT_FALSE(session.route.empty()) << "seed " << seed;
    EXPECT_NEAR(session.route_cost, central.path_cost, 1e-9);
    EXPECT_NEAR(session.total_payment, central.total_payment(), 1e-6)
        << "seed " << seed;
    EXPECT_FALSE(session.cheating_detected());
  }
}

TEST(Session, Fig2BasicProtocolRewardsLying) {
  // The paper's core motivation for Algorithm 2: under the basic
  // protocol, v1 saves 1 unit (pays 5 instead of 6) by denying an edge.
  const auto g = graph::make_fig2_graph();

  SessionConfig honest;
  const SessionResult truth = run_session(g, 0, g.costs(), 1, honest);
  EXPECT_DOUBLE_EQ(truth.total_payment, 6.0);

  SessionConfig lying;
  lying.spt_behaviors.assign(g.num_nodes(), {});
  lying.spt_behaviors[1].denied_neighbor = 4;
  const SessionResult lied = run_session(g, 0, g.costs(), 1, lying);
  EXPECT_EQ(lied.route, (std::vector<NodeId>{1, 5, 0}));
  EXPECT_DOUBLE_EQ(lied.total_payment, 5.0);
  EXPECT_FALSE(lied.cheating_detected());
}

TEST(Session, Fig2VerifiedProtocolRestoresTruthfulPayment) {
  const auto g = graph::make_fig2_graph();
  SessionConfig config;
  config.spt_mode = SptMode::kVerified;
  config.payment_mode = PaymentMode::kVerified;
  config.spt_behaviors.assign(g.num_nodes(), {});
  config.spt_behaviors[1].denied_neighbor = 4;
  const SessionResult session = run_session(g, 0, g.costs(), 1, config);
  EXPECT_EQ(session.route, (std::vector<NodeId>{1, 4, 3, 2, 0}));
  EXPECT_DOUBLE_EQ(session.total_payment, 6.0);
  EXPECT_GT(session.spt_stats.direct_contacts, 0u);
}

TEST(Session, StatsAccumulateMessages) {
  const auto g = graph::make_ring(10, 1.0);
  SessionConfig config;
  const SessionResult session = run_session(g, 0, g.costs(), 5, config);
  EXPECT_GT(session.spt_stats.broadcasts, 0u);
  EXPECT_GT(session.payment_stats.broadcasts, 0u);
  EXPECT_GT(session.payment_stats.values_sent,
            session.payment_stats.broadcasts);
}

TEST(Session, UnreachableSourceReported) {
  graph::NodeGraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  const auto g = b.build();
  SessionConfig config;
  const SessionResult session = run_session(g, 0, g.costs(), 3, config);
  EXPECT_TRUE(session.route.empty());
  EXPECT_TRUE(std::isinf(session.total_payment));
}

TEST(Session, MessageComplexityGrowsWithNetwork) {
  SessionConfig config;
  std::size_t prev = 0;
  for (std::size_t n : {8, 16, 32}) {
    const auto g = graph::make_ring(n, 1.0);
    const SessionResult s = run_session(g, 0, g.costs(), 1, config);
    const std::size_t total =
        s.spt_stats.broadcasts + s.payment_stats.broadcasts;
    EXPECT_GT(total, prev);
    prev = total;
  }
}

}  // namespace
}  // namespace tc::distsim
