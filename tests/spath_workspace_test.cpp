// Differential tests for the allocation-free workspace kernels: every
// `_into` run, batch driver, and MaskedSptDelta evaluation must be
// bit-identical to the allocating reference implementation.
#include "spath/workspace.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "graph/generators.hpp"
#include "spath/avoiding.hpp"
#include "spath/batch.hpp"
#include "spath/dijkstra.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace tc::spath {
namespace {

using graph::Cost;
using graph::kInfCost;
using graph::kInvalidNode;
using graph::NodeId;

constexpr std::uint64_t kSeeds = 100;

void expect_bits_equal(const std::vector<Cost>& a, const std::vector<Cost>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(Cost)), 0);
}

void expect_same_spt(const SptResult& a, const SptResult& b) {
  EXPECT_EQ(a.source, b.source);
  expect_bits_equal(a.dist, b.dist);
  EXPECT_EQ(a.parent, b.parent);
}

graph::NodeGraph random_node_graph(std::uint64_t seed) {
  // p below the connectivity threshold for some seeds, so unreachable
  // nodes are exercised too.
  return graph::make_erdos_renyi(60, 0.08, 0.1, 9.0, seed);
}

graph::NodeMask random_mask(std::size_t n, NodeId source, std::uint64_t seed) {
  util::Rng rng(seed);
  graph::NodeMask mask(n);
  for (int i = 0; i < 6; ++i) {
    const NodeId v = static_cast<NodeId>(rng.next_below(n));
    if (v != source) mask.block(v);
  }
  return mask;
}

TEST(WorkspaceDifferential, NodeAllHeapsMatchAllocating) {
  DijkstraWorkspace ws;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto g = random_node_graph(seed);
    const NodeId source = static_cast<NodeId>(seed % g.num_nodes());

    dijkstra_node_into(ws, g, source);
    expect_same_spt(ws.to_result(), dijkstra_node(g, source));

    dijkstra_node_into(ws, g, source, {}, kInvalidNode, HeapKind::kQuad);
    expect_same_spt(ws.to_result(), dijkstra_node_quad(g, source));

    dijkstra_node_into(ws, g, source, {}, kInvalidNode, HeapKind::kPairing);
    expect_same_spt(ws.to_result(), dijkstra_node_pairing(g, source));
  }
}

TEST(WorkspaceDifferential, NodeMaskedMatchesAllocating) {
  DijkstraWorkspace ws;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto g = random_node_graph(seed);
    const NodeId source = static_cast<NodeId>(seed % g.num_nodes());
    const graph::NodeMask mask = random_mask(g.num_nodes(), source, seed * 7);
    dijkstra_node_into(ws, g, source, mask);
    expect_same_spt(ws.to_result(), dijkstra_node(g, source, mask));
  }
}

TEST(WorkspaceDifferential, LinkMatchesAllocating) {
  DijkstraWorkspace ws;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    graph::HeteroParams params;
    params.n = 50;
    const auto g = graph::make_hetero_geometric(params, seed);
    const NodeId source = static_cast<NodeId>(seed % g.num_nodes());

    dijkstra_link_into(ws, g, source);
    expect_same_spt(ws.to_result(), dijkstra_link(g, source));

    const graph::NodeMask mask = random_mask(g.num_nodes(), source, seed * 3);
    dijkstra_link_into(ws, g, source, mask);
    expect_same_spt(ws.to_result(), dijkstra_link(g, source, mask));
  }
}

TEST(WorkspaceDifferential, LinkToTargetMatchesAllocating) {
  DijkstraWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    graph::HeteroParams params;
    params.n = 50;
    const auto g = graph::make_hetero_geometric(params, seed);
    const NodeId target = static_cast<NodeId>(seed % g.num_nodes());
    dijkstra_link_to_target_into(ws, g, target);
    expect_same_spt(ws.to_result(), dijkstra_link_to_target(g, target));
  }
}

TEST(WorkspaceDifferential, EarlyStopSettlesTarget) {
  DijkstraWorkspace ws;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto g = random_node_graph(seed);
    const std::size_t n = g.num_nodes();
    const NodeId source = static_cast<NodeId>(seed % n);
    const NodeId target = static_cast<NodeId>((seed * 31) % n);
    if (source == target) continue;
    const SptResult full = dijkstra_node(g, source);

    dijkstra_node_into(ws, g, source, {}, /*stop_at=*/target);
    ASSERT_EQ(ws.reached(target), full.reached(target));
    if (full.reached(target)) {
      EXPECT_EQ(ws.dist(target), full.dist[target]);
      EXPECT_EQ(ws.path_to(target), full.path_to(target));
    }
    // An early-stopped run must not poison the next full run.
    dijkstra_node_into(ws, g, source);
    expect_same_spt(ws.to_result(), full);
  }
}

TEST(Workspace, ReuseAcrossGraphSizes) {
  DijkstraWorkspace ws;
  for (const std::size_t n : {50u, 200u, 10u, 120u}) {
    const auto g = graph::make_erdos_renyi(n, 0.1, 0.1, 9.0, n);
    dijkstra_node_into(ws, g, 0);
    expect_same_spt(ws.to_result(), dijkstra_node(g, 0));
  }
}

TEST(Workspace, EpochWraparoundStaysCorrect) {
  DijkstraWorkspace ws;
  const auto g = random_node_graph(5);
  const SptResult want = dijkstra_node(g, 0);
  dijkstra_node_into(ws, g, 0);  // leaves stale stamps behind
  ws.debug_set_epoch(0xffffffffu - 1);
  for (int run = 0; run < 4; ++run) {  // crosses the wraparound clear
    dijkstra_node_into(ws, g, 0);
    expect_same_spt(ws.to_result(), want);
  }
}

TEST(Workspace, ScratchMaskStartsAllAllowed) {
  DijkstraWorkspace ws;
  graph::NodeMask& mask = ws.scratch_mask(16);
  for (NodeId v = 0; v < 16; ++v) EXPECT_TRUE(mask.allowed(v));
  mask.block(3);
  mask.clear_blocks();
  EXPECT_TRUE(ws.scratch_mask(16).allowed(3));
}

TEST(MaskedSptDelta, NodeSingleRemovalMatchesFullMaskedRun) {
  DijkstraWorkspace ws;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto g = random_node_graph(seed);
    const std::size_t n = g.num_nodes();
    const NodeId source = static_cast<NodeId>(seed % n);
    const SptResult base = dijkstra_node(g, source);
    SptChildren children;
    children.build(base);
    MaskedSptDelta delta(g, base, children, ws);
    std::vector<Cost> got;
    for (NodeId k = 0; k < n; ++k) {
      if (k == source) continue;
      graph::NodeMask mask(n);
      mask.block(k);
      const SptResult want = dijkstra_node(g, source, mask);
      delta.eval_one(k);
      delta.dist_into(got);
      expect_bits_equal(got, want.dist);
      EXPECT_EQ(delta.dist(k), kInfCost);
    }
  }
}

TEST(MaskedSptDelta, NodeMultiRemovalMatchesFullMaskedRun) {
  DijkstraWorkspace ws;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto g = random_node_graph(seed);
    const std::size_t n = g.num_nodes();
    const NodeId source = static_cast<NodeId>(seed % n);
    const SptResult base = dijkstra_node(g, source);
    SptChildren children;
    children.build(base);
    MaskedSptDelta delta(g, base, children, ws);

    util::Rng rng(seed * 1000003);
    std::vector<NodeId> removed;
    graph::NodeMask mask(n);
    for (int trial = 0; trial < 8; ++trial) {
      removed.clear();
      const std::size_t count = 1 + rng.next_below(5);
      for (std::size_t i = 0; i < count; ++i) {
        const NodeId v = static_cast<NodeId>(rng.next_below(n));
        if (v == source) continue;
        removed.push_back(v);  // duplicates allowed: eval must dedup
        mask.block(v);
      }
      if (removed.empty()) continue;
      const SptResult want = dijkstra_node(g, source, mask);
      delta.eval(removed);
      std::vector<Cost> got;
      delta.dist_into(got);
      expect_bits_equal(got, want.dist);
      for (NodeId v = 0; v < n; ++v) {
        EXPECT_EQ(delta.dist(v), want.dist[v]);
        if (!delta.affected(v)) {
          EXPECT_EQ(delta.dist(v), base.dist[v]);
        }
      }
      mask.clear_blocks();
    }
  }
}

TEST(MaskedSptDelta, LinkRemovalMatchesFullMaskedRun) {
  DijkstraWorkspace ws;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    graph::HeteroParams params;
    params.n = 50;
    const auto g = graph::make_hetero_geometric(params, seed);
    const std::size_t n = g.num_nodes();
    const NodeId source = static_cast<NodeId>(seed % n);
    const SptResult base = dijkstra_link(g, source);
    SptChildren children;
    children.build(base);
    MaskedSptDelta delta(g, g.reverse(), base, children, ws);
    std::vector<Cost> got;
    for (NodeId k = 0; k < n; ++k) {
      if (k == source) continue;
      graph::NodeMask mask(n);
      mask.block(k);
      const SptResult want = dijkstra_link(g, source, mask);
      delta.eval_one(k);
      delta.dist_into(got);
      expect_bits_equal(got, want.dist);
    }
  }
}

TEST(MaskedSptDelta, ReverseRunUsesForwardGraphAsInArcs) {
  // The overpayment link study runs its base SPT on g.reverse(); the
  // in-arc mate is then g itself.
  DijkstraWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    graph::HeteroParams params;
    params.n = 40;
    const auto g = graph::make_hetero_geometric(params, seed);
    const graph::LinkGraph& rev = g.reverse();
    const SptResult base = dijkstra_link(rev, 0);
    SptChildren children;
    children.build(base);
    MaskedSptDelta delta(rev, g, base, children, ws);
    std::vector<Cost> got;
    for (NodeId k = 1; k < g.num_nodes(); ++k) {
      graph::NodeMask mask(g.num_nodes());
      mask.block(k);
      const SptResult want = dijkstra_link(rev, 0, mask);
      delta.eval_one(k);
      delta.dist_into(got);
      expect_bits_equal(got, want.dist);
    }
  }
}

TEST(Batch, AvoidingPathsBatchMatchesSingles) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto g = random_node_graph(seed);
    const std::size_t n = g.num_nodes();
    const NodeId s = static_cast<NodeId>(seed % n);
    const NodeId t = static_cast<NodeId>((seed * 13 + 7) % n);
    if (s == t) continue;
    std::vector<NodeId> avoid;
    for (NodeId v = 0; v < n; ++v) {
      if (v != s && v != t) avoid.push_back(v);
    }
    const std::vector<Cost> batch = avoiding_paths_batch(g, s, t, avoid);
    ASSERT_EQ(batch.size(), avoid.size());
    for (std::size_t i = 0; i < avoid.size(); ++i) {
      const AvoidingPath single = avoiding_path_node(g, s, t, avoid[i]);
      EXPECT_EQ(batch[i], single.cost) << "avoid " << avoid[i];
    }
  }
}

TEST(Batch, SptBatchParallelMatchesSerial) {
  const auto g = graph::make_erdos_renyi(120, 0.08, 0.1, 9.0, 42);
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < g.num_nodes(); ++v) sources.push_back(v);

  const std::vector<SptResult> serial = spt_batch(g, sources);
  util::ThreadPool pool(8);
  const std::vector<SptResult> parallel = spt_batch(g, sources, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_same_spt(parallel[i], serial[i]);
    expect_same_spt(serial[i], dijkstra_node(g, sources[i]));
  }
}

TEST(Batch, SptBatchLinkParallelMatchesSerial) {
  graph::HeteroParams params;
  params.n = 80;
  const auto g = graph::make_hetero_geometric(params, 7);
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < g.num_nodes(); ++v) sources.push_back(v);

  const std::vector<SptResult> serial = spt_batch(g, sources);
  util::ThreadPool pool(8);
  const std::vector<SptResult> parallel = spt_batch(g, sources, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_same_spt(parallel[i], serial[i]);
  }
}

// -- bucket queue: bit-identical dist, tie-break-valid parents ------------

// kBucket's contract (see HeapKind): distances match every other heap bit
// for bit; parent witnesses may differ on distance ties but must still be
// exact shortest-path witnesses on the graph.
void expect_valid_node_tree(const graph::NodeGraph& g, const SptResult& got) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == got.source) {
      EXPECT_EQ(got.parent[v], kInvalidNode);
      continue;
    }
    if (!got.reached(v)) continue;
    const NodeId p = got.parent[v];
    ASSERT_NE(p, kInvalidNode) << "reached node without a parent: " << v;
    ASSERT_TRUE(got.reached(p));
    EXPECT_TRUE(g.has_edge(p, v));
    const Cost through =
        got.dist[p] + (p == got.source ? 0.0 : g.node_cost(p));
    EXPECT_EQ(through, got.dist[v]) << "parent " << p << " -> " << v;
  }
}

void expect_valid_link_tree(const graph::LinkGraph& g, const SptResult& got) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == got.source) {
      EXPECT_EQ(got.parent[v], kInvalidNode);
      continue;
    }
    if (!got.reached(v)) continue;
    const NodeId p = got.parent[v];
    ASSERT_NE(p, kInvalidNode) << "reached node without a parent: " << v;
    ASSERT_TRUE(got.reached(p));
    bool witnessed = false;
    for (const graph::Arc& a : g.out_arcs(p)) {
      if (a.to == v && got.dist[p] + a.cost == got.dist[v]) {
        witnessed = true;
        break;
      }
    }
    EXPECT_TRUE(witnessed) << "parent " << p << " -> " << v;
  }
}

TEST(BucketDifferential, NodeDistMatchesBinary) {
  DijkstraWorkspace ws;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto g = random_node_graph(seed);
    const NodeId source = static_cast<NodeId>(seed % g.num_nodes());
    const SptResult ref = dijkstra_node(g, source);

    dijkstra_node_into(ws, g, source, {}, kInvalidNode, HeapKind::kBucket);
    const SptResult got = ws.to_result();
    expect_bits_equal(got.dist, ref.dist);
    expect_valid_node_tree(g, got);
  }
}

TEST(BucketDifferential, NodeMaskedDistMatchesBinary) {
  DijkstraWorkspace ws;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto g = random_node_graph(seed);
    const NodeId source = static_cast<NodeId>(seed % g.num_nodes());
    const graph::NodeMask mask = random_mask(g.num_nodes(), source, seed * 7);
    const SptResult ref = dijkstra_node(g, source, mask);

    dijkstra_node_into(ws, g, source, mask, kInvalidNode, HeapKind::kBucket);
    const SptResult got = ws.to_result();
    expect_bits_equal(got.dist, ref.dist);
    expect_valid_node_tree(g, got);
  }
}

TEST(BucketDifferential, LinkDistMatchesBinary) {
  DijkstraWorkspace ws;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    graph::HeteroParams params;
    params.n = 50;
    const auto g = graph::make_hetero_geometric(params, seed);
    const NodeId source = static_cast<NodeId>(seed % g.num_nodes());
    const SptResult ref = dijkstra_link(g, source);

    dijkstra_link_into(ws, g, source, {}, kInvalidNode, HeapKind::kBucket);
    const SptResult got = ws.to_result();
    expect_bits_equal(got.dist, ref.dist);
    expect_valid_link_tree(g, got);

    const graph::NodeMask mask = random_mask(g.num_nodes(), source, seed * 3);
    const SptResult mref = dijkstra_link(g, source, mask);
    dijkstra_link_into(ws, g, source, mask, kInvalidNode, HeapKind::kBucket);
    const SptResult mgot = ws.to_result();
    expect_bits_equal(mgot.dist, mref.dist);
    expect_valid_link_tree(g, mgot);
  }
}

TEST(BucketDifferential, EarlyStopSettlesTarget) {
  DijkstraWorkspace ws;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto g = random_node_graph(seed);
    const std::size_t n = g.num_nodes();
    const NodeId source = static_cast<NodeId>(seed % n);
    const NodeId target = static_cast<NodeId>((seed * 31) % n);
    if (source == target) continue;
    const SptResult full = dijkstra_node(g, source);

    dijkstra_node_into(ws, g, source, {}, target, HeapKind::kBucket);
    ASSERT_EQ(ws.reached(target), full.reached(target));
    if (full.reached(target)) {
      EXPECT_EQ(ws.dist(target), full.dist[target]);
    }
  }
}

// -- multi-source batched kernel ------------------------------------------

TEST(Batch, SptMultiIntoMatchesIndependentSolves) {
  DijkstraWorkspace ws;
  SptMatrix m;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto g = random_node_graph(seed);
    const std::size_t n = g.num_nodes();
    std::vector<NodeId> roots;
    for (NodeId v = 0; v < n; v += 7) roots.push_back(v);

    spt_multi_into(ws, m, g, roots);
    ASSERT_EQ(m.num_roots(), roots.size());
    for (std::size_t i = 0; i < roots.size(); ++i) {
      EXPECT_EQ(m.source(i), roots[i]);
      expect_same_spt(m.to_result(i), dijkstra_node(g, roots[i]));
    }

    const graph::NodeMask mask = random_mask(n, roots[0], seed * 11);
    std::vector<NodeId> allowed;
    for (const NodeId r : roots) {
      if (mask.allowed(r)) allowed.push_back(r);
    }
    spt_multi_into(ws, m, g, allowed, mask);
    for (std::size_t i = 0; i < allowed.size(); ++i) {
      expect_same_spt(m.to_result(i), dijkstra_node(g, allowed[i], mask));
    }

    // kBucket rows: bit-identical dist, witness-valid parents.
    spt_multi_into(ws, m, g, roots, {}, HeapKind::kBucket);
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const SptResult got = m.to_result(i);
      expect_bits_equal(got.dist, dijkstra_node(g, roots[i]).dist);
      expect_valid_node_tree(g, got);
    }
  }
}

TEST(Batch, SptMultiIntoLinkMatchesIndependentSolves) {
  DijkstraWorkspace ws;
  SptMatrix m;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    graph::HeteroParams params;
    params.n = 50;
    const auto g = graph::make_hetero_geometric(params, seed);
    std::vector<NodeId> roots;
    for (NodeId v = 0; v < g.num_nodes(); v += 5) roots.push_back(v);

    spt_multi_into(ws, m, g, roots);
    for (std::size_t i = 0; i < roots.size(); ++i) {
      expect_same_spt(m.to_result(i), dijkstra_link(g, roots[i]));
    }

    spt_multi_into(ws, m, g, roots, {}, HeapKind::kBucket);
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const SptResult got = m.to_result(i);
      expect_bits_equal(got.dist, dijkstra_link(g, roots[i]).dist);
      expect_valid_link_tree(g, got);
    }
  }
}

TEST(Batch, ForEachMaskedSptParallelMatchesSerial) {
  const auto g = graph::make_erdos_renyi(100, 0.1, 0.1, 9.0, 11);
  const std::size_t n = g.num_nodes();
  const NodeId source = 0;
  const std::size_t count = n - 1;
  const auto build_mask = [&](std::size_t i, graph::NodeMask& mask) {
    mask.block(static_cast<NodeId>(i + 1));  // never the source
  };

  std::vector<std::vector<Cost>> serial(count), parallel(count);
  const auto collect = [n](std::vector<std::vector<Cost>>& out) {
    return [&out, n](std::size_t i, const DijkstraWorkspace& ws) {
      out[i].resize(n);
      for (NodeId v = 0; v < n; ++v) out[i][v] = ws.dist(v);
    };
  };
  for_each_masked_spt(g, source, count, build_mask, collect(serial));
  util::ThreadPool pool(8);
  for_each_masked_spt(g, source, count, build_mask, collect(parallel), &pool);

  for (std::size_t i = 0; i < count; ++i) {
    expect_bits_equal(parallel[i], serial[i]);
    graph::NodeMask mask(n);
    mask.block(static_cast<NodeId>(i + 1));
    expect_bits_equal(serial[i], dijkstra_node(g, source, mask).dist);
  }
}

}  // namespace
}  // namespace tc::spath
