// Cross-module integration: generator -> mechanism -> distributed
// protocol -> ledger settlement, end to end on one network.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fast_payment.hpp"
#include "core/overpayment.hpp"
#include "core/resale.hpp"
#include "core/vcg_unicast.hpp"
#include "distsim/ledger.hpp"
#include "distsim/session.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "mech/truthfulness.hpp"
#include "util/rng.hpp"

namespace tc {
namespace {

using graph::Cost;
using graph::NodeId;

TEST(Integration, CampusNetworkFullFlow) {
  // 1. Deploy a campus-scale UDG with node 0 as the access point.
  graph::UdgParams params;
  params.n = 60;
  params.region = {800.0, 800.0};
  params.range_m = 260.0;
  const auto g = graph::make_unit_disk_node(params, 1.0, 10.0, 2024);
  ASSERT_TRUE(graph::is_connected(g));

  // 2. Centralized fast payments for one source.
  const NodeId source = 17;
  const auto central = core::vcg_payments_fast(g, source, 0);
  ASSERT_TRUE(central.connected());
  if (std::isinf(central.total_payment())) GTEST_SKIP();

  // 3. The distributed session agrees with the centralized mechanism.
  distsim::SessionConfig config;
  config.spt_mode = distsim::SptMode::kVerified;
  config.payment_mode = distsim::PaymentMode::kVerified;
  const auto session = distsim::run_session(g, 0, g.costs(), source, config);
  ASSERT_FALSE(session.route.empty());
  EXPECT_NEAR(session.route_cost, central.path_cost, 1e-9);
  EXPECT_NEAR(session.total_payment, central.total_payment(), 1e-6);
  EXPECT_FALSE(session.cheating_detected());

  // 4. Settle the session at the AP's ledger with a signed packet.
  distsim::Ledger ledger(g.num_nodes(), 77);
  ledger.fund_all(1000.0);
  std::vector<std::pair<NodeId, Cost>> relay_prices;
  for (std::size_t i = 1; i + 1 < central.path.size(); ++i) {
    const NodeId k = central.path[i];
    relay_prices.emplace_back(k, central.payments[k]);
  }
  const auto sig = distsim::sign(ledger.key_of(source),
                                 distsim::packet_payload(1, source, 0));
  const auto settlement =
      ledger.settle_upstream(1, source, 0, sig, relay_prices);
  ASSERT_TRUE(settlement.accepted);
  EXPECT_NEAR(settlement.charged, central.total_payment(), 1e-9);
  EXPECT_NEAR(ledger.balance(source), 1000.0 - central.total_payment(),
              1e-9);
}

TEST(Integration, TruthfulnessOnGeneratedTopology) {
  graph::UdgParams params;
  params.n = 30;
  params.region = {500.0, 500.0};
  params.range_m = 220.0;
  const auto g = graph::make_unit_disk_node(params, 1.0, 8.0, 5);
  if (!graph::is_connected(g)) GTEST_SKIP();
  core::VcgUnicastMechanism mech;
  util::Rng rng(5);
  const auto report = mech::check_truthfulness(mech, g, 7, 0, g.costs(), rng);
  EXPECT_TRUE(report.ok());
}

TEST(Integration, OverpaymentStudyAgreesWithResaleInputs) {
  // compute_all_payments (per-source fast engine) and the batched
  // overpayment study must tell the same story.
  const auto g = graph::make_erdos_renyi(20, 0.3, 0.5, 5.0, 11);
  ASSERT_TRUE(graph::is_connected(g));
  const auto all = core::compute_all_payments(g, 0);
  const auto study = core::overpayment_node_model(g, 0);
  for (const auto& s : study.per_source) {
    if (std::isinf(all.per_source[s.source].total_payment())) continue;
    EXPECT_NEAR(s.payment, all.per_source[s.source].total_payment(), 1e-9)
        << "source " << s.source;
  }
}

TEST(Integration, ResaleOpportunitiesShrinkPayments) {
  // Every reported deal, executed, strictly reduces the source's outlay
  // and strictly raises the reseller's utility.
  const auto g = graph::make_fig4_graph();
  const auto all = core::compute_all_payments(g, 0);
  const auto deals = core::find_resale_deals(g, 0, all);
  for (const auto& deal : deals) {
    EXPECT_LT(deal.source_outlay_after_split(), deal.direct_payment);
    EXPECT_GT(deal.reseller_gain_after_split(), 0.0);
  }
}

TEST(Integration, BiconnectivityPreventsInfinitePayments) {
  // On biconnected topologies no VCG payment is infinite: the paper's
  // monopoly-prevention rationale for requiring biconnectivity.
  int tested = 0;
  for (std::uint64_t seed = 1; seed <= 40 && tested < 10; ++seed) {
    const auto g = graph::make_erdos_renyi(18, 0.3, 0.5, 5.0, seed);
    if (!graph::is_biconnected(g)) continue;
    ++tested;
    for (NodeId s = 1; s < g.num_nodes(); ++s) {
      const auto r = core::vcg_payments_fast(g, s, 0);
      ASSERT_TRUE(r.connected());
      EXPECT_FALSE(std::isinf(r.total_payment()))
          << "seed " << seed << " source " << s;
    }
  }
  EXPECT_GE(tested, 5);
}

}  // namespace
}  // namespace tc
