#include "svc/quote_engine.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "core/fast_link_payment.hpp"
#include "core/fast_payment.hpp"
#include "core/link_vcg.hpp"
#include "core/neighbor_collusion.hpp"
#include "core/service.hpp"
#include "graph/generators.hpp"
#include "mech/invariants.hpp"
#include "util/rng.hpp"

namespace tc::svc {
namespace {

using graph::Cost;
using graph::NodeId;

void expect_same_quote(const core::PaymentResult& got,
                       const core::PaymentResult& want, double tol = 1e-9) {
  EXPECT_EQ(got.path, want.path);
  if (want.connected()) {
    EXPECT_NEAR(got.path_cost, want.path_cost, tol);
  } else {
    EXPECT_FALSE(got.connected());
  }
  ASSERT_EQ(got.payments.size(), want.payments.size());
  for (std::size_t k = 0; k < want.payments.size(); ++k) {
    if (graph::finite_cost(want.payments[k])) {
      EXPECT_NEAR(got.payments[k], want.payments[k], tol) << "payment " << k;
    } else {
      EXPECT_EQ(got.payments[k], want.payments[k]) << "payment " << k;
    }
  }
}

TEST(QuoteEngine, MatchesEveryNodePricer) {
  const auto g = graph::make_fig2_graph();
  const struct {
    std::shared_ptr<const Pricer> pricer;
    core::PaymentResult want;
  } cases[] = {
      {make_node_vcg_pricer(core::PaymentEngine::kNaive),
       core::vcg_payments_naive(g, 1, 0)},
      {make_node_vcg_pricer(core::PaymentEngine::kFast),
       core::vcg_payments_fast(g, 1, 0)},
      {make_neighbor_resistant_pricer(),
       core::neighbor_resistant_payments(g, 1, 0)},
  };
  for (const auto& c : cases) {
    QuoteEngine engine(g, 0, c.pricer);
    const auto quote = engine.quote(1);
    ASSERT_TRUE(quote.has_value()) << c.pricer->name();
    expect_same_quote(*quote, c.want);
    EXPECT_EQ(quote->profile_version, engine.epoch()) << c.pricer->name();
  }
}

TEST(QuoteEngine, MatchesEveryLinkPricer) {
  const auto g = graph::make_unit_disk_link({24, {1200.0, 1200.0}, 420.0, 2.0},
                                            /*seed=*/7);
  const struct {
    std::shared_ptr<const Pricer> pricer;
    core::PaymentResult want;
  } cases[] = {
      {make_link_vcg_pricer(LinkEngine::kNaive),
       core::link_vcg_payments(g, 5, 0)},
      {make_link_vcg_pricer(LinkEngine::kFast),
       core::fast_link_payments(g, 5, 0)},
  };
  for (const auto& c : cases) {
    QuoteEngine engine(g, 0, c.pricer);
    const auto quote = engine.quote(5);
    if (!c.want.connected()) {
      EXPECT_FALSE(quote.has_value());
      continue;
    }
    ASSERT_TRUE(quote.has_value()) << c.pricer->name();
    expect_same_quote(*quote, c.want);
  }
}

// All four engine entry points share the disconnected convention: empty
// path, infinite path cost, payments all-zero of size n (satellite 2).
TEST(QuoteEngine, DisconnectedConventionIdenticalAcrossEngines) {
  graph::NodeGraphBuilder b(4);
  b.add_edge(0, 1);  // nodes 2, 3 isolated from {0, 1}
  b.add_edge(2, 3);
  const auto g = b.build();
  const auto link = graph::to_link_graph(g);
  const core::PaymentResult results[] = {
      core::vcg_payments_naive(g, 2, 0), core::vcg_payments_fast(g, 2, 0),
      core::link_vcg_payments(link, 2, 0),
      core::fast_link_payments(link, 2, 0)};
  for (const auto& r : results) {
    EXPECT_TRUE(r.path.empty());
    EXPECT_EQ(r.path_cost, graph::kInfCost);
    EXPECT_EQ(r.payments, std::vector<Cost>(4, 0.0));
  }
  QuoteEngine engine(g, 0);
  EXPECT_FALSE(engine.quote(2).has_value());
  // Disconnection is cached too: second lookup is a hit, not a reprice.
  EXPECT_FALSE(engine.quote(2).has_value());
  EXPECT_EQ(engine.metrics().cache_hits, 1u);
}

// Monopoly relays are priced kInfCost by node and link engines alike.
TEST(QuoteEngine, MonopolyConventionIdenticalAcrossEngines) {
  const auto g = graph::make_path(3, 2.0);  // 0 - 1 - 2; node 1 is a cut
  const auto link = graph::to_link_graph(g);
  EXPECT_EQ(core::vcg_payments_naive(g, 2, 0).payments[1], graph::kInfCost);
  EXPECT_EQ(core::vcg_payments_fast(g, 2, 0).payments[1], graph::kInfCost);
  EXPECT_EQ(core::link_vcg_payments(link, 2, 0).payments[1], graph::kInfCost);
  EXPECT_EQ(core::fast_link_payments(link, 2, 0).payments[1], graph::kInfCost);
  QuoteEngine engine(g, 0);
  EXPECT_FALSE(engine.monopoly_free());
}

TEST(QuoteEngine, PairQuotesAreCachedAndEpochStamped) {
  const auto g = graph::make_grid(3, 3, 2.0);
  QuoteEngine engine(g, 0);
  const auto q1 = engine.quote(3, 8);
  ASSERT_TRUE(q1.has_value());
  EXPECT_EQ(q1->profile_version, 1u);
  const auto q2 = engine.quote(3, 8);
  ASSERT_TRUE(q2.has_value());
  expect_same_quote(*q2, *q1);
  const auto m = engine.metrics();
  EXPECT_EQ(m.cache_misses, 1u);
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.quotes_served, 2u);
}

TEST(QuoteEngine, DeclarationBumpsEpochAndRepricesAffectedQuotes) {
  const auto g = graph::make_fig2_graph();
  QuoteEngine engine(g, 0);
  const auto before = engine.quote(1);
  ASSERT_TRUE(before.has_value());
  ASSERT_GE(before->path.size(), 3u);
  const NodeId relay = before->path[1];
  const Cost bumped = engine.declared_cost(relay) + 5.0;
  const std::uint64_t epoch = engine.declare_cost(relay, bumped);
  EXPECT_EQ(epoch, 2u);
  EXPECT_EQ(engine.epoch(), 2u);
  const auto after = engine.quote(1);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->profile_version, 2u);
  graph::NodeGraph expected_graph = g;
  expected_graph.set_node_cost(relay, bumped);
  expect_same_quote(*after, core::vcg_payments_fast(expected_graph, 1, 0));
  // A no-op re-declaration keeps the epoch (and the warm cache).
  EXPECT_EQ(engine.declare_cost(relay, bumped), 2u);
  EXPECT_EQ(engine.epoch(), 2u);
}

TEST(QuoteEngine, BulkDeclarationFullFlushes) {
  const auto g = graph::make_grid(3, 3, 2.0);
  QuoteEngine engine(g, 0);
  (void)engine.quote_all();
  std::vector<Cost> declared(g.num_nodes(), 3.0);
  engine.declare_costs(declared);
  const auto m = engine.metrics();
  EXPECT_EQ(m.full_flushes, 1u);
  EXPECT_EQ(m.declarations, 1u);
  const auto quote = engine.quote(8);
  ASSERT_TRUE(quote.has_value());
  graph::NodeGraph expected_graph = g;
  for (NodeId v = 0; v < g.num_nodes(); ++v) expected_graph.set_node_cost(v, 3.0);
  expect_same_quote(*quote, core::vcg_payments_fast(expected_graph, 8, 0));
}

TEST(QuoteEngine, QuoteAllMatchesLegacyService) {
  const auto g = graph::make_unit_disk_node({48, {1500.0, 1500.0}, 400.0, 2.0},
                                            1.0, 10.0, /*seed=*/11);
  QuoteEngine engine(g, 0);
  core::UnicastService service(g, 0);
  const auto fresh = engine.quote_all();
  const auto legacy = service.quote_all();
  ASSERT_EQ(fresh.size(), legacy.size());
  for (std::size_t v = 0; v < fresh.size(); ++v) {
    ASSERT_EQ(fresh[v].has_value(), legacy[v].has_value()) << "node " << v;
    if (fresh[v]) expect_same_quote(*fresh[v], *legacy[v]);
  }
}

TEST(QuoteEngine, QuoteBatchPricesArbitraryPairs) {
  const auto g = graph::make_grid(4, 4, 1.5);
  QuoteEngine engine(g, 0);
  std::vector<std::pair<NodeId, NodeId>> pairs = {{1, 14}, {5, 10}, {15, 2}};
  const auto quotes = engine.quote_batch(pairs);
  ASSERT_EQ(quotes.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_TRUE(quotes[i].has_value());
    expect_same_quote(*quotes[i], core::vcg_payments_fast(g, pairs[i].first,
                                                          pairs[i].second));
  }
}

// The ISSUE's core incremental-invalidation acceptance test: across many
// random UDGs and many single-node re-declarations, quotes served by the
// incrementally-invalidated cache must be indistinguishable from a fresh
// recompute (the always-recompute oracle). Continuous random costs make
// least-cost paths almost surely unique, so paths compare exactly.
TEST(QuoteEngine, IncrementalInvalidationMatchesOracleOnRandomUdgs) {
  constexpr int kGraphs = 200;
  constexpr int kRoundsPerGraph = 5;
  std::uint64_t total_retained = 0;
  std::uint64_t total_evicted = 0;
  for (int trial = 0; trial < kGraphs; ++trial) {
    const auto seed = static_cast<std::uint64_t>(trial);
    const auto g = graph::make_unit_disk_node(
        {32, {1200.0, 1200.0}, 420.0, 2.0}, 0.5, 10.0, seed);
    QuoteEngine engine(g, 0);
    util::Rng rng(0xfeedULL + seed);
    for (int round = 0; round <= kRoundsPerGraph; ++round) {
      if (round > 0) {
        const auto v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
        // Mix raises and lowers around the original cost band.
        engine.declare_cost(v, rng.uniform(0.2, 14.0));
      }
      const auto snap = engine.snapshot();
      const auto quotes = engine.quote_all();
      for (NodeId v = 1; v < g.num_nodes(); ++v) {
        const auto oracle = core::vcg_payments_fast(snap->node(), v, 0);
        ASSERT_EQ(quotes[v].has_value(), oracle.connected())
            << "trial " << trial << " round " << round << " node " << v;
        if (!quotes[v]) continue;
        ASSERT_EQ(quotes[v]->path, oracle.path)
            << "trial " << trial << " round " << round << " node " << v;
        ASSERT_EQ(quotes[v]->payments.size(), oracle.payments.size());
        for (std::size_t k = 0; k < oracle.payments.size(); ++k) {
          if (graph::finite_cost(oracle.payments[k])) {
            ASSERT_NEAR(quotes[v]->payments[k], oracle.payments[k], 1e-9)
                << "trial " << trial << " round " << round << " node " << v
                << " payment " << k;
          } else {
            ASSERT_EQ(quotes[v]->payments[k], oracle.payments[k]);
          }
        }
      }
    }
    const auto m = engine.metrics();
    total_retained += m.quotes_retained;
    total_evicted += m.quotes_evicted;
  }
  // The invalidation must actually be incremental: a meaningful share of
  // cached quotes survives re-declarations (otherwise this test would
  // pass trivially with a full flush per declaration).
  EXPECT_GT(total_retained, 0u);
  EXPECT_GT(total_evicted, 0u);
}

// Link-model variant: per-arc re-declarations against the naive link VCG
// oracle (arc updates make costs asymmetric, which the naive engine and
// the certificate both handle).
TEST(QuoteEngine, IncrementalInvalidationMatchesOracleOnLinkUdgs) {
  constexpr int kGraphs = 40;
  constexpr int kRoundsPerGraph = 4;
  std::uint64_t total_retained = 0;
  for (int trial = 0; trial < kGraphs; ++trial) {
    const auto seed = 1000 + static_cast<std::uint64_t>(trial);
    const auto g = graph::make_unit_disk_link(
        {20, {1000.0, 1000.0}, 420.0, 2.0}, seed);
    QuoteEngine engine(g, 0);
    util::Rng rng(0x11780ULL ^ seed);
    for (int round = 0; round <= kRoundsPerGraph; ++round) {
      if (round > 0) {
        // Pick a random existing arc and re-declare its cost.
        NodeId u = 0;
        for (int guard = 0; guard < 64; ++guard) {
          u = static_cast<NodeId>(rng.next_below(g.num_nodes()));
          if (!g.out_arcs(u).empty()) break;
        }
        if (g.out_arcs(u).empty()) continue;
        const auto arcs = g.out_arcs(u);
        const NodeId w = arcs[rng.next_below(arcs.size())].to;
        engine.declare_arc_cost(u, w, rng.uniform(0.05, 4.0));
      }
      const auto snap = engine.snapshot();
      for (NodeId v = 1; v < g.num_nodes(); ++v) {
        const auto quote = engine.quote(v);
        const auto oracle = core::link_vcg_payments(snap->link(), v, 0);
        ASSERT_EQ(quote.has_value(), oracle.connected());
        if (!quote) continue;
        ASSERT_EQ(quote->path, oracle.path)
            << "trial " << trial << " round " << round << " node " << v;
        for (std::size_t k = 0; k < oracle.payments.size(); ++k) {
          if (graph::finite_cost(oracle.payments[k])) {
            ASSERT_NEAR(quote->payments[k], oracle.payments[k], 1e-9);
          } else {
            ASSERT_EQ(quote->payments[k], oracle.payments[k]);
          }
        }
      }
    }
    total_retained += engine.metrics().quotes_retained;
  }
  EXPECT_GT(total_retained, 0u);
}

// The ISSUE's concurrency acceptance test: N reader threads quote while a
// writer re-declares. Every returned quote must be internally consistent
// with one single epoch: recomputing under the cost vector recorded for
// its profile_version reproduces it exactly, and it passes the mechanism
// audit on that epoch's graph.
TEST(QuoteEngine, ConcurrentReadersSeeEpochConsistentQuotes) {
  const auto base = graph::make_unit_disk_node(
      {24, {1000.0, 1000.0}, 420.0, 2.0}, 1.0, 10.0, /*seed=*/42);
  QuoteEngine engine(base, 0);

  // The writer records the full declared-cost vector in force at every
  // epoch it publishes.
  std::map<std::uint64_t, std::vector<Cost>> costs_at_epoch;
  std::vector<Cost> current(base.num_nodes());
  for (NodeId v = 0; v < base.num_nodes(); ++v) current[v] = base.node_cost(v);
  costs_at_epoch[engine.epoch()] = current;

  constexpr int kReaders = 4;
  constexpr int kQuotesPerReader = 120;
  constexpr int kDeclarations = 60;
  using Collected = std::tuple<NodeId, NodeId, core::PaymentResult>;
  std::vector<std::vector<Collected>> collected(kReaders);

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      util::Rng rng(0xabcdULL + static_cast<std::uint64_t>(r));
      for (int i = 0; i < kQuotesPerReader; ++i) {
        const auto source =
            static_cast<NodeId>(1 + rng.next_below(base.num_nodes() - 1));
        if (rng.next_below(2) == 0) {
          if (auto q = engine.quote(source)) {
            collected[r].emplace_back(source, 0, std::move(*q));
          }
        } else {
          auto target =
              static_cast<NodeId>(rng.next_below(base.num_nodes()));
          if (target == source) target = (target + 1) % base.num_nodes();
          if (auto q = engine.quote(source, target)) {
            collected[r].emplace_back(source, target, std::move(*q));
          }
        }
      }
    });
  }
  {
    util::Rng rng(0x9999ULL);
    for (int i = 0; i < kDeclarations; ++i) {
      const auto v = static_cast<NodeId>(rng.next_below(base.num_nodes()));
      const Cost c = rng.uniform(0.3, 12.0);
      const std::uint64_t epoch = engine.declare_cost(v, c);
      current[v] = c;
      costs_at_epoch[epoch] = current;
    }
  }
  for (auto& t : readers) t.join();

  std::size_t audited = 0;
  for (const auto& per_reader : collected) {
    for (const auto& [source, target, quote] : per_reader) {
      const auto it = costs_at_epoch.find(quote.profile_version);
      ASSERT_NE(it, costs_at_epoch.end())
          << "quote stamped with unknown epoch " << quote.profile_version;
      graph::NodeGraph g = base;
      for (NodeId v = 0; v < base.num_nodes(); ++v) {
        g.set_node_cost(v, it->second[v]);
      }
      const auto expected = core::vcg_payments_fast(g, source, target);
      ASSERT_EQ(quote.path, expected.path);
      for (std::size_t k = 0; k < expected.payments.size(); ++k) {
        if (graph::finite_cost(expected.payments[k])) {
          ASSERT_NEAR(quote.payments[k], expected.payments[k], 1e-9);
        } else {
          ASSERT_EQ(quote.payments[k], expected.payments[k]);
        }
      }
      mech::UnicastOutcome outcome;
      outcome.path = quote.path;
      outcome.path_cost = quote.path_cost;
      outcome.payments = quote.payments;
      const auto report = mech::audit_unicast_payment(g, source, target, outcome);
      ASSERT_TRUE(report.ok()) << report.to_string();
      ++audited;
    }
  }
  EXPECT_GT(audited, 0u);
}

// The ISSUE's warm-path acceptance test: under randomized mixed
// quote/declare churn, the full stack (COW snapshots + warm repaired
// SPTs + incremental invalidation) must be payment-equivalent to an
// always-recompute oracle, and every served quote must pass the
// mechanism audit. The metrics assert the warm path actually ran — the
// test would otherwise pass vacuously via cold fallbacks.
TEST(QuoteEngine, WarmChurnMatchesAlwaysRecomputeOracleAndAudits) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto g = graph::make_unit_disk_node(
        {28, {1100.0, 1100.0}, 420.0, 2.0}, 0.5, 9.0, seed);
    QuoteEngine engine(g, 0);
    util::Rng rng(0xabadcafeULL + seed);
    std::size_t audited = 0;
    for (int op = 0; op < 160; ++op) {
      if (rng.bernoulli(0.3)) {
        const auto v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
        engine.declare_cost(v, rng.uniform(0.2, 12.0));
        continue;
      }
      const auto source =
          static_cast<NodeId>(1 + rng.next_below(g.num_nodes() - 1));
      auto target = static_cast<NodeId>(rng.next_below(g.num_nodes()));
      if (target == source) target = (target + 1) % g.num_nodes();
      const auto snap = engine.snapshot();
      const auto quote = engine.quote(source, target);
      const auto oracle = core::vcg_payments_fast(snap->node(), source, target);
      ASSERT_EQ(quote.has_value(), oracle.connected());
      if (!quote) continue;
      ASSERT_EQ(quote->path, oracle.path)
          << "seed " << seed << " op " << op;
      for (std::size_t k = 0; k < oracle.payments.size(); ++k) {
        if (graph::finite_cost(oracle.payments[k])) {
          ASSERT_NEAR(quote->payments[k], oracle.payments[k], 1e-9)
              << "seed " << seed << " op " << op << " payment " << k;
        } else {
          ASSERT_EQ(quote->payments[k], oracle.payments[k]);
        }
      }
      mech::UnicastOutcome outcome;
      outcome.path = quote->path;
      outcome.path_cost = quote->path_cost;
      outcome.payments = quote->payments;
      const auto report =
          mech::audit_unicast_payment(snap->node(), source, target, outcome);
      ASSERT_TRUE(report.ok()) << report.to_string();
      ++audited;
    }
    EXPECT_GT(audited, 0u);
    const auto m = engine.metrics();
    EXPECT_GT(m.warm_priced, 0u) << "seed " << seed;
    EXPECT_GT(m.warm_repairs, 0u) << "seed " << seed;
    EXPECT_GT(m.warm_solves, 0u) << "seed " << seed;
  }
}

// Every Options combination (COW x warm x incremental) serves identical
// quotes under the same declaration stream.
TEST(QuoteEngine, AllOptionCombinationsAgreeUnderChurn) {
  const auto g = graph::make_unit_disk_node({24, {1000.0, 1000.0}, 420.0, 2.0},
                                            0.5, 9.0, /*seed=*/17);
  std::vector<std::unique_ptr<QuoteEngine>> engines;
  for (const bool cow : {false, true}) {
    for (const bool warm : {false, true}) {
      for (const bool incr : {false, true}) {
        EngineConfig o;
        o.cow_snapshots = cow;
        o.warm_spt_cache = warm;
        o.incremental_invalidation = incr;
        engines.push_back(std::make_unique<QuoteEngine>(g, 0, nullptr, o));
      }
    }
  }
  util::Rng rng(0x7777ULL);
  for (int round = 0; round < 10; ++round) {
    const auto v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const Cost c = rng.uniform(0.2, 12.0);
    for (auto& e : engines) e->declare_cost(v, c);
    const auto want = engines.front()->quote_all();
    for (std::size_t i = 1; i < engines.size(); ++i) {
      const auto got = engines[i]->quote_all();
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t s = 0; s < want.size(); ++s) {
        ASSERT_EQ(got[s].has_value(), want[s].has_value())
            << "engine " << i << " round " << round << " source " << s;
        if (want[s]) expect_same_quote(*got[s], *want[s]);
      }
    }
  }
}

// Satellite 3a: an arc-cost *decrease* that creates a new, cheaper
// replacement path must evict the cached quote (its thru crosses below
// vmax) and the reprice must reflect the cheaper avoid cost.
TEST(QuoteEngine, ArcDecreaseCreatingCheaperReplacementPathReprices) {
  graph::LinkGraphBuilder b(4);
  b.add_link(2, 1, 1.0, 1.0);  // LCP 2 -> 1 -> 0, cost 2.0
  b.add_link(1, 0, 1.0, 1.0);
  b.add_link(2, 3, 2.0, 2.0);  // replacement 2 -> 3 -> 0, cost 4.0
  b.add_link(3, 0, 2.0, 2.0);
  QuoteEngine engine(b.build(), 0);
  const auto before = engine.quote(2);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->path, (std::vector<NodeId>{2, 1, 0}));
  const Cost p_before = before->payments[1];
  ASSERT_TRUE(graph::finite_cost(p_before));

  engine.declare_arc_cost(3, 0, 0.5);  // replacement now 2.5
  EXPECT_GE(engine.metrics().quotes_evicted, 1u);
  const auto snap = engine.snapshot();
  const auto after = engine.quote(2);
  ASSERT_TRUE(after.has_value());
  expect_same_quote(*after, core::link_vcg_payments(snap->link(), 2, 0));
  EXPECT_LT(after->payments[1], p_before);
}

// Satellite 3b: repeated retained decreases on a far-away arc accumulate
// decrease slack until the (conservative, still-correct) eviction fires,
// even though each individual decrease left a huge thru margin.
TEST(QuoteEngine, DecreaseSlackAccumulatesAcrossRetainedDecreases) {
  graph::LinkGraphBuilder b(5);
  b.add_link(0, 1, 1.0, 1.0);  // ring 0-1-2-3-0 carries the quote
  b.add_link(1, 2, 1.1, 1.1);
  b.add_link(2, 3, 1.2, 1.2);
  b.add_link(3, 0, 1.3, 1.3);
  // Every path using arc 1->4 passes through relay 1 itself, so the
  // detour can never serve as a relay-1-avoiding path: decreasing c(1,4)
  // provably never changes the quote. The cheap 4-3 tail keeps thru(1->4)
  // close enough to vmax that accumulated slack crosses the margin while
  // the declared cost is still non-negative.
  b.add_link(1, 4, 20.0, 20.0);
  b.add_link(4, 3, 0.5, 0.5);
  QuoteEngine engine(b.build(), 0);
  ASSERT_TRUE(engine.quote(2).has_value());

  std::uint64_t retained_before_evict = 0;
  bool evicted = false;
  Cost c = 20.0;
  for (int step = 0; step < 12 && !evicted; ++step) {
    c -= 2.0;
    engine.declare_arc_cost(1, 4, c);
    const auto m = engine.metrics();
    if (m.quotes_evicted > 0) {
      evicted = true;
    } else {
      retained_before_evict = m.quotes_retained;
    }
  }
  // Without slack accounting the margin would still be >10x vmax at the
  // last step; only the accumulated slack can force the eviction.
  EXPECT_TRUE(evicted);
  EXPECT_GT(retained_before_evict, 0u);
  const auto snap = engine.snapshot();
  const auto quote = engine.quote(2);
  ASSERT_TRUE(quote.has_value());
  expect_same_quote(*quote, core::link_vcg_payments(snap->link(), 2, 0));
}

// Satellite 3c: a no-op arc re-declaration keeps the epoch, the cache,
// and the declaration counter untouched.
TEST(QuoteEngine, NoOpArcRedeclarationKeepsEpoch) {
  const auto g = graph::make_unit_disk_link({16, {900.0, 900.0}, 420.0, 2.0},
                                            /*seed=*/9);
  QuoteEngine engine(g, 0);
  ASSERT_TRUE(engine.quote(3).has_value());
  NodeId u = 0;
  while (g.out_arcs(u).empty()) ++u;
  const NodeId w = g.out_arcs(u)[0].to;
  const Cost c = engine.snapshot()->arc_cost(u, w);
  EXPECT_EQ(engine.declare_arc_cost(u, w, c), 1u);
  EXPECT_EQ(engine.epoch(), 1u);
  const auto m = engine.metrics();
  EXPECT_EQ(m.declarations, 0u);
  EXPECT_EQ(m.quotes_evicted, 0u);
  // The cached quote is still served as a hit under the same epoch.
  ASSERT_TRUE(engine.quote(3).has_value());
  EXPECT_EQ(engine.metrics().cache_hits, 1u);
}

// Conservative mode (incremental_invalidation = false) must agree with
// incremental mode quote-for-quote.
TEST(QuoteEngine, ConservativeAndIncrementalModesAgree) {
  const auto g = graph::make_unit_disk_node({28, {1100.0, 1100.0}, 420.0, 2.0},
                                            0.5, 9.0, /*seed=*/3);
  EngineConfig conservative;
  conservative.incremental_invalidation = false;
  QuoteEngine a(g, 0, nullptr, conservative);
  QuoteEngine b(g, 0);
  util::Rng rng(0x51deULL);
  for (int round = 0; round < 8; ++round) {
    const auto v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const Cost c = rng.uniform(0.2, 12.0);
    a.declare_cost(v, c);
    b.declare_cost(v, c);
    const auto qa = a.quote_all();
    const auto qb = b.quote_all();
    ASSERT_EQ(qa.size(), qb.size());
    for (std::size_t s = 0; s < qa.size(); ++s) {
      ASSERT_EQ(qa[s].has_value(), qb[s].has_value());
      if (qa[s]) expect_same_quote(*qb[s], *qa[s]);
    }
  }
  EXPECT_GE(a.metrics().full_flushes, 8u);
  EXPECT_EQ(b.metrics().full_flushes, 0u);
}

}  // namespace
}  // namespace tc::svc
