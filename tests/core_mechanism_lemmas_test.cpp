// Property tests for the mechanism-level lemmas of Section III.E.
//
// Lemma 4: for a strategyproof mechanism, while the output is unchanged,
// an agent's payment does not depend on its own declaration.
// Threshold structure (inside Theorem 7's proof): fixing d^{-k}, there is
// a critical value a_k with v_k on the LCP iff d_k < a_k, and the VCG
// payment to an on-path v_k equals exactly that threshold.
#include <gtest/gtest.h>

#include <cmath>

#include "core/vcg_unicast.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "spath/avoiding.hpp"
#include "util/rng.hpp"

namespace tc::core {
namespace {

using graph::Cost;
using graph::NodeId;

TEST(Lemma4, PaymentIndependentOfOwnDeclarationWhileOnPath) {
  VcgUnicastMechanism mech;
  util::Rng rng(21);
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto g = graph::make_erdos_renyi(18, 0.3, 0.5, 5.0, seed);
    if (!graph::is_biconnected(g)) continue;
    const auto truthful = mech.run(g, 1, 0, g.costs());
    if (!truthful.connected()) continue;
    for (std::size_t i = 1; i + 1 < truthful.path.size(); ++i) {
      const NodeId k = truthful.path[i];
      const Cost p_truth = truthful.payments[k];
      if (std::isinf(p_truth)) continue;
      // Any declaration strictly below the payment keeps k on the LCP
      // and must leave the payment unchanged.
      for (int trial = 0; trial < 4; ++trial) {
        auto declared = g.costs();
        declared[k] = rng.uniform(0.0, std::max(0.0, p_truth - 1e-6));
        const auto lied = mech.run(g, 1, 0, declared);
        ASSERT_TRUE(lied.is_relay(k))
            << "declaring below the threshold must keep the relay on path";
        EXPECT_NEAR(lied.payments[k], p_truth, 1e-9)
            << "seed " << seed << " relay " << k;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 30);
}

TEST(Threshold, OnPathIffBelowAvoidingDifference) {
  // a_k = ||P_{-k}|| - (||P|| - d_k): declaring below keeps v_k on the
  // LCP, declaring above prices it off.
  VcgUnicastMechanism mech;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto g = graph::make_erdos_renyi(16, 0.35, 0.5, 5.0, seed);
    if (!graph::is_biconnected(g)) continue;
    const auto truthful = mech.run(g, 2, 0, g.costs());
    if (!truthful.connected()) continue;
    for (std::size_t i = 1; i + 1 < truthful.path.size(); ++i) {
      const NodeId k = truthful.path[i];
      const Cost threshold = truthful.payments[k];
      if (std::isinf(threshold)) continue;

      auto declared = g.costs();
      declared[k] = threshold - 0.01;
      EXPECT_TRUE(mech.run(g, 2, 0, declared).is_relay(k))
          << "seed " << seed << " relay " << k;
      declared[k] = threshold + 0.01;
      EXPECT_FALSE(mech.run(g, 2, 0, declared).is_relay(k))
          << "seed " << seed << " relay " << k;
    }
  }
}

TEST(Threshold, OffPathNodesHaveThresholdToo) {
  // An off-path node joins the LCP once it undercuts its own threshold:
  // the declared value at which some path through it beats the LCP.
  VcgUnicastMechanism mech;
  const auto g = graph::make_fig2_graph();
  // v5 (cost 4) is off the LCP; with d_5 < 3 - (path cost without its
  // own contribution: route v1-v5-v0 costs d_5) it wins once d_5 < 3.
  auto declared = g.costs();
  declared[5] = 2.9;
  EXPECT_TRUE(mech.run(g, 1, 0, declared).is_relay(5));
  declared[5] = 3.1;
  EXPECT_FALSE(mech.run(g, 1, 0, declared).is_relay(5));
}

TEST(Lemma4, OffPathPaymentIsZeroRegardlessOfDeclaration) {
  VcgUnicastMechanism mech;
  const auto g = graph::make_fig2_graph();
  for (const Cost lie : {4.0, 5.0, 10.0, 1e6}) {
    auto declared = g.costs();
    declared[5] = lie;  // stays off the LCP for every value >= 3
    const auto out = mech.run(g, 1, 0, declared);
    EXPECT_DOUBLE_EQ(out.payments[5], 0.0);
  }
}

TEST(Theorem7Structure, PaymentEqualsAvoidingDifferencePlusDeclared) {
  // Direct verification of p_k = ||P_{-k}|| - ||P|| + d_k on random
  // instances — the formula payments are cross-checked against explicit
  // avoiding-path computations.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto g = graph::make_erdos_renyi(20, 0.3, 0.5, 5.0, seed * 7);
    const auto r = vcg_payments_naive(g, 3, 0);
    if (!r.connected()) continue;
    for (std::size_t i = 1; i + 1 < r.path.size(); ++i) {
      const NodeId k = r.path[i];
      const auto avoid = spath::avoiding_path_node(g, 3, 0, k);
      if (avoid.path.empty()) {
        EXPECT_TRUE(std::isinf(r.payments[k]));
        continue;
      }
      EXPECT_NEAR(r.payments[k],
                  avoid.cost - r.path_cost + g.node_cost(k), 1e-9)
          << "seed " << seed << " relay " << k;
    }
  }
}

}  // namespace
}  // namespace tc::core
