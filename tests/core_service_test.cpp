#include "core/service.hpp"

#include <gtest/gtest.h>

#include "core/fast_payment.hpp"
#include "core/neighbor_collusion.hpp"
#include "graph/generators.hpp"

namespace tc::core {
namespace {

using graph::NodeId;

TEST(UnicastService, QuoteMatchesEngine) {
  const auto g = graph::make_fig2_graph();
  UnicastService service(g, 0);
  const auto quote = service.quote(1);
  ASSERT_TRUE(quote.has_value());
  const auto direct = vcg_payments_fast(g, 1, 0);
  EXPECT_EQ(quote->path, direct.path);
  EXPECT_DOUBLE_EQ(quote->path_cost, direct.path_cost);
  EXPECT_EQ(quote->payments, direct.payments);
  EXPECT_DOUBLE_EQ(quote->total_payment(), 6.0);
  EXPECT_DOUBLE_EQ(quote->total_for_packets(10), 60.0);
}

TEST(UnicastService, NeighborResistantSchemeQuotes) {
  const auto g = graph::make_grid(3, 3, 2.0);
  UnicastService service(g, 0, PricingScheme::kNeighborResistant);
  const auto quote = service.quote(8);
  ASSERT_TRUE(quote.has_value());
  const auto direct = neighbor_resistant_payments(g, 8, 0);
  EXPECT_EQ(quote->payments, direct.payments);
}

TEST(UnicastService, CachesUntilRedeclaration) {
  const auto g = graph::make_fig2_graph();
  UnicastService service(g, 0);
  const auto q1 = service.quote(1);
  ASSERT_TRUE(q1.has_value());
  EXPECT_EQ(q1->profile_version, service.profile_version());

  // Second quote at the same version comes from cache (same version tag).
  const auto q2 = service.quote(1);
  EXPECT_EQ(q2->profile_version, q1->profile_version);

  // Re-declaration bumps the version and changes the quote.
  service.declare_cost(4, 10.0);  // prices the cheap chain off
  const auto q3 = service.quote(1);
  ASSERT_TRUE(q3.has_value());
  EXPECT_GT(q3->profile_version, q1->profile_version);
  EXPECT_EQ(q3->path, (std::vector<NodeId>{1, 5, 0}));
}

TEST(UnicastService, NoopDeclarationKeepsVersion) {
  const auto g = graph::make_fig2_graph();
  UnicastService service(g, 0);
  const auto v = service.profile_version();
  service.declare_cost(4, service.declared_cost(4));
  EXPECT_EQ(service.profile_version(), v);
}

TEST(UnicastService, BulkDeclaration) {
  const auto g = graph::make_ring(6, 1.0);
  UnicastService service(g, 0);
  std::vector<graph::Cost> declared(6, 1.0);
  declared[1] = 50.0;
  service.declare_costs(declared);
  const auto quote = service.quote(2);
  ASSERT_TRUE(quote.has_value());
  // Route must now avoid node 1.
  for (NodeId v : quote->path) EXPECT_NE(v, 1u);
}

TEST(UnicastService, UnroutableSourceIsNullopt) {
  graph::NodeGraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  UnicastService service(b.build(), 0);
  EXPECT_FALSE(service.quote(3).has_value());
  EXPECT_TRUE(service.quote(1).has_value());
}

TEST(UnicastService, MonopolyFreeChecks) {
  UnicastService ring(graph::make_ring(8), 0);
  EXPECT_TRUE(ring.monopoly_free());
  UnicastService path(graph::make_path(5), 0);
  EXPECT_FALSE(path.monopoly_free());
  // Neighbor-resistant needs the stronger neighborhood condition.
  UnicastService small_ring(graph::make_ring(5), 0,
                            PricingScheme::kNeighborResistant);
  EXPECT_TRUE(small_ring.monopoly_free());
  UnicastService path2(graph::make_path(5), 0,
                       PricingScheme::kNeighborResistant);
  EXPECT_FALSE(path2.monopoly_free());
}

TEST(UnicastService, QuoteAllCoversEverySource) {
  const auto g = graph::make_ring(7, 2.0);
  UnicastService service(g, 0);
  const auto quotes = service.quote_all();
  ASSERT_EQ(quotes.size(), 7u);
  EXPECT_FALSE(quotes[0].has_value());  // the AP itself
  for (NodeId v = 1; v < 7; ++v) {
    ASSERT_TRUE(quotes[v].has_value()) << v;
    EXPECT_EQ(quotes[v]->path.front(), v);
    EXPECT_EQ(quotes[v]->path.back(), 0u);
  }
}

TEST(UnicastService, QuotePairArbitraryEndpoints) {
  const auto g = graph::make_ring(8, 1.0);
  UnicastService service(g, 0);
  const auto quote = service.quote_pair(2, 6);
  ASSERT_TRUE(quote.has_value());
  EXPECT_EQ(quote->path.front(), 2u);
  EXPECT_EQ(quote->path.back(), 6u);
  const auto direct = vcg_payments_fast(g, 2, 6);
  EXPECT_EQ(quote->payments, direct.payments);
}

TEST(UnicastService, QuotePairUnroutable) {
  graph::NodeGraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  UnicastService service(b.build(), 0);
  EXPECT_FALSE(service.quote_pair(1, 3).has_value());
}

TEST(UnicastService, RejectsBadInputs) {
  const auto g = graph::make_ring(5);
  UnicastService service(g, 0);
  EXPECT_DEATH(service.quote(0), "access point");
}

}  // namespace
}  // namespace tc::core
