// BoundedQueue: capacity, rejected-push ownership, close/drain semantics,
// and a small MPSC hand-off smoke.
#include "util/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <thread>
#include <vector>

namespace tc::util {
namespace {

TEST(BoundedQueue, PushPopFifo) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(int{i}));
  EXPECT_EQ(q.depth(), 4u);
  for (int i = 0; i < 4; ++i) {
    const auto item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(q.depth(), 0u);
}

TEST(BoundedQueue, FullQueueRejectsWithoutConsuming) {
  BoundedQueue<std::unique_ptr<int>> q(1);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(1)));
  auto rejected = std::make_unique<int>(2);
  EXPECT_FALSE(q.try_push(std::move(rejected)));
  // The caller still owns a rejected item — the fleet's shed path must
  // answer the client the item carries.
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(*rejected, 2);
}

TEST(BoundedQueue, CloseDrainsThenSignalsExit) {
  BoundedQueue<int> q(8);
  EXPECT_TRUE(q.try_push(7));
  EXPECT_TRUE(q.try_push(8));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push(9));  // closed queue rejects new work
  EXPECT_EQ(q.pop(), std::optional<int>(7));
  EXPECT_EQ(q.pop(), std::optional<int>(8));
  EXPECT_EQ(q.pop(), std::nullopt);  // drained + closed => consumer exits
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(2);
  std::thread consumer([&q] { EXPECT_EQ(q.pop(), std::nullopt); });
  q.close();
  consumer.join();
}

TEST(BoundedQueue, TryPopNDrainsFifoInBatches) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(q.try_push(int{i}));
  std::vector<int> out;
  EXPECT_EQ(q.try_pop_n(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  // Appends to the caller's buffer and returns only what was available.
  EXPECT_EQ(q.try_pop_n(out, 4), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(q.try_pop_n(out, 4), 0u);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(BoundedQueue, TryPopNZeroMaxIsANoop) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  std::vector<int> out;
  EXPECT_EQ(q.try_pop_n(out, 0), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(q.depth(), 1u);
}

TEST(BoundedQueue, TryPopNDrainsAcrossClose) {
  // A worker draining its mailbox at shutdown: close() must not strand
  // already-admitted items, and the drained batch keeps FIFO order.
  BoundedQueue<std::unique_ptr<int>> q(4);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(10)));
  EXPECT_TRUE(q.try_push(std::make_unique<int>(11)));
  q.close();
  std::vector<std::unique_ptr<int>> out;
  EXPECT_EQ(q.try_pop_n(out, 8), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(*out[0], 10);
  EXPECT_EQ(*out[1], 11);
  // Drained + closed: further batch pops report empty, matching pop()'s
  // nullopt exit signal.
  EXPECT_EQ(q.try_pop_n(out, 8), 0u);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, ExtractIfRemovesMatchesPreservingOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(q.try_push(int{i}));
  std::vector<int> odds;
  EXPECT_EQ(q.extract_if([](const int& v) { return v % 2 == 1; }, odds), 3u);
  EXPECT_EQ(odds, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(q.depth(), 3u);
  // The survivors keep their relative order too.
  EXPECT_EQ(q.pop(), std::optional<int>(0));
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.pop(), std::optional<int>(4));
}

TEST(BoundedQueue, ExtractIfOnMoveOnlyItems) {
  BoundedQueue<std::unique_ptr<int>> q(4);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(1)));
  EXPECT_TRUE(q.try_push(std::make_unique<int>(2)));
  std::vector<std::unique_ptr<int>> out;
  EXPECT_EQ(
      q.extract_if([](const std::unique_ptr<int>& v) { return *v == 2; },
                   out),
      1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out[0], 2);
  EXPECT_EQ(q.depth(), 1u);
}

TEST(BoundedQueue, MultiProducerHandoff) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  BoundedQueue<int> q(16);
  long long sum = 0;
  std::thread consumer([&] {
    while (auto item = q.pop()) sum += *item;
  });
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = p * kPerProducer + i;
        while (!q.try_push(std::move(value))) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  consumer.join();
  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

}  // namespace
}  // namespace tc::util
