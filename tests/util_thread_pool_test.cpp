#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tc::util {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, WorkerCountRespected) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(2);
  int value = 0;
  pool.parallel_for(3, 4, [&](std::size_t i) { value = static_cast<int>(i); });
  EXPECT_EQ(value, 3);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ResultsIndependentOfWorkerCount) {
  // The Monte Carlo harness depends on this: same indices, same work.
  auto run = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<std::uint64_t> out(64);
    pool.parallel_for(0, out.size(),
                      [&](std::size_t i) { out[i] = i * i + 1; });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(ThreadPool, DefaultPoolSingleton) {
  EXPECT_EQ(&default_pool(), &default_pool());
  EXPECT_GE(default_pool().worker_count(), 1u);
}

}  // namespace
}  // namespace tc::util
