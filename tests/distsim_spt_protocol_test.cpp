#include "distsim/spt_protocol.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "spath/dijkstra.hpp"

namespace tc::distsim {
namespace {

using graph::Cost;
using graph::NodeId;

std::vector<Cost> costs_of(const graph::NodeGraph& g) { return g.costs(); }

TEST(SptProtocol, ConvergesToDijkstraOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto g = graph::make_erdos_renyi(24, 0.2, 0.5, 5.0, seed);
    const auto out =
        run_spt_protocol(g, 0, costs_of(g), SptMode::kBasic);
    EXPECT_TRUE(out.converged);
    const auto reference = spath::dijkstra_node(g, 0);
    for (NodeId v = 1; v < g.num_nodes(); ++v) {
      if (reference.reached(v)) {
        EXPECT_NEAR(out.distance[v], reference.dist[v], 1e-9)
            << "seed " << seed << " node " << v;
      } else {
        EXPECT_FALSE(graph::finite_cost(out.distance[v]));
      }
    }
  }
}

TEST(SptProtocol, FirstHopsFormTreePaths) {
  const auto g = graph::make_erdos_renyi(20, 0.25, 0.5, 5.0, 3);
  const auto out = run_spt_protocol(g, 0, costs_of(g), SptMode::kBasic);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    if (!graph::finite_cost(out.distance[v])) continue;
    const auto path = out.path_of(v);
    ASSERT_FALSE(path.empty()) << "node " << v;
    EXPECT_EQ(path.front(), v);
    EXPECT_EQ(path.back(), 0u);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
    }
  }
}

TEST(SptProtocol, ConvergesWithinLinearRounds) {
  const auto g = graph::make_path(30, 1.0);
  const auto out = run_spt_protocol(g, 0, costs_of(g), SptMode::kBasic);
  EXPECT_TRUE(out.converged);
  EXPECT_LE(out.stats.rounds, 2 * 30 + 2u);
  EXPECT_GT(out.stats.broadcasts, 0u);
}

TEST(SptProtocol, RootNeighborsHaveZeroDistance) {
  const auto g = graph::make_ring(6, 3.0);
  const auto out = run_spt_protocol(g, 0, costs_of(g), SptMode::kBasic);
  EXPECT_DOUBLE_EQ(out.distance[1], 0.0);
  EXPECT_DOUBLE_EQ(out.distance[5], 0.0);
}

TEST(SptProtocol, Fig2LieChangesRouteInBasicMode) {
  // The Fig. 2 scenario: source v1 denies its adjacency with v4, steering
  // its route to v1-v5-v0 — the basic protocol cannot tell.
  const auto g = graph::make_fig2_graph();
  std::vector<SptBehavior> behaviors(g.num_nodes());
  behaviors[1].denied_neighbor = 4;
  const auto out =
      run_spt_protocol(g, 0, costs_of(g), SptMode::kBasic, behaviors);
  EXPECT_TRUE(out.converged);
  EXPECT_EQ(out.path_of(1), (std::vector<NodeId>{1, 5, 0}));
  EXPECT_DOUBLE_EQ(out.distance[1], 4.0);
  EXPECT_TRUE(out.stats.clean());  // nobody noticed
}

TEST(SptProtocol, Fig2LieCorrectedInVerifiedMode) {
  // Algorithm 2: v4 hears v1 claim D=4 while D(v4)+d4 = 3 < 4 and
  // FH(v1) != v4 — case 1 forces the correction over the secure channel.
  const auto g = graph::make_fig2_graph();
  std::vector<SptBehavior> behaviors(g.num_nodes());
  behaviors[1].denied_neighbor = 4;
  const auto out =
      run_spt_protocol(g, 0, costs_of(g), SptMode::kVerified, behaviors);
  EXPECT_TRUE(out.converged);
  EXPECT_GT(out.stats.direct_contacts, 0u);
  EXPECT_EQ(out.path_of(1), (std::vector<NodeId>{1, 4, 3, 2, 0}));
  EXPECT_DOUBLE_EQ(out.distance[1], 3.0);
}

TEST(SptProtocol, StubbornLiarAccused) {
  const auto g = graph::make_fig2_graph();
  std::vector<SptBehavior> behaviors(g.num_nodes());
  behaviors[1].denied_neighbor = 4;
  behaviors[1].stubborn = true;
  const auto out =
      run_spt_protocol(g, 0, costs_of(g), SptMode::kVerified, behaviors);
  ASSERT_FALSE(out.stats.accusations.empty());
  EXPECT_EQ(out.stats.accusations[0].accused, 1u);
  EXPECT_EQ(out.stats.accusations[0].accuser, 4u);
}

TEST(SptProtocol, DistanceInflatorCorrectedInVerifiedMode) {
  // A relay inflating its broadcast distance (to repel transit traffic)
  // is caught by case-1/2 checks and corrected.
  const auto g = graph::make_ring(8, 1.0);
  std::vector<SptBehavior> behaviors(g.num_nodes());
  behaviors[2].distance_inflation = 10.0;
  const auto basic =
      run_spt_protocol(g, 0, costs_of(g), SptMode::kBasic, behaviors);
  const auto verified =
      run_spt_protocol(g, 0, costs_of(g), SptMode::kVerified, behaviors);
  const auto reference = spath::dijkstra_node(g, 0);
  // Basic mode: node 3 believes the wrong distance via 2's inflated claim
  // or detours; verified mode must restore the Dijkstra distances.
  bool basic_wrong = false;
  for (NodeId v = 1; v < 8; ++v) {
    if (std::abs(basic.distance[v] - reference.dist[v]) > 1e-9)
      basic_wrong = true;
    EXPECT_NEAR(verified.distance[v], reference.dist[v], 1e-9) << v;
  }
  EXPECT_TRUE(basic_wrong);
  EXPECT_GT(verified.stats.direct_contacts, 0u);
}

TEST(SptProtocol, VerifiedModeQuietOnHonestNetwork) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = graph::make_erdos_renyi(18, 0.25, 0.5, 5.0, seed);
    const auto out = run_spt_protocol(g, 0, costs_of(g), SptMode::kVerified);
    EXPECT_TRUE(out.converged);
    EXPECT_TRUE(out.stats.clean()) << "seed " << seed;
    // Honest convergence needs no secure-channel corrections.
    EXPECT_EQ(out.stats.direct_contacts, 0u) << "seed " << seed;
  }
}

TEST(SptProtocol, AsynchronousScheduleSameTreeDistances) {
  // Bellman-Ford relaxations commute: delayed broadcasts change only the
  // round count, never the converged distances.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = graph::make_erdos_renyi(20, 0.25, 0.5, 5.0, seed);
    const auto sync = run_spt_protocol(g, 0, costs_of(g), SptMode::kBasic);
    for (const double p : {0.6, 0.25}) {
      SptSchedule schedule;
      schedule.activation_probability = p;
      schedule.seed = seed * 77;
      const auto async = run_spt_protocol(g, 0, costs_of(g), SptMode::kBasic,
                                          {}, 0, schedule);
      ASSERT_TRUE(async.converged) << "seed " << seed << " p " << p;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (graph::finite_cost(sync.distance[v])) {
          EXPECT_NEAR(async.distance[v], sync.distance[v], 1e-9)
              << "seed " << seed << " p " << p << " node " << v;
        } else {
          EXPECT_FALSE(graph::finite_cost(async.distance[v]));
        }
      }
    }
  }
}

TEST(SptProtocol, AsynchronousVerifiedStillCorrectsLiar) {
  const auto g = graph::make_fig2_graph();
  std::vector<SptBehavior> behaviors(g.num_nodes());
  behaviors[1].denied_neighbor = 4;
  SptSchedule schedule;
  schedule.activation_probability = 0.5;
  const auto out = run_spt_protocol(g, 0, costs_of(g), SptMode::kVerified,
                                    behaviors, 0, schedule);
  EXPECT_TRUE(out.converged);
  EXPECT_DOUBLE_EQ(out.distance[1], 3.0);  // lie defeated despite delays
}

TEST(SptProtocol, DisconnectedNodesStayInfinite) {
  graph::NodeGraphBuilder b(5);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(3, 4);
  const auto g = b.build();
  const auto out = run_spt_protocol(g, 0, g.costs(), SptMode::kBasic);
  EXPECT_FALSE(graph::finite_cost(out.distance[3]));
  EXPECT_TRUE(out.path_of(3).empty());
  EXPECT_EQ(out.path_status(3), PathStatus::kUnreached);
  EXPECT_EQ(out.stats.loops_detected, 0u);
}

TEST(SptProtocol, PathStatusDistinguishesLoopFromUnreached) {
  // Hand-built outcome: 1 has a valid route, 2<->3 point at each other
  // (corrupted or adversarial first-hop state), 4 dead-ends into nothing.
  SptOutcome out;
  out.distance = {0.0, 1.0, 2.0, 2.0, graph::kInfCost};
  out.first_hop = {graph::kInvalidNode, 0, 3, 2, graph::kInvalidNode};
  EXPECT_EQ(out.path_status(1), PathStatus::kOk);
  EXPECT_EQ(out.path_of(1), (std::vector<NodeId>{1, 0}));
  EXPECT_EQ(out.path_status(2), PathStatus::kLoop);
  EXPECT_EQ(out.path_status(3), PathStatus::kLoop);
  EXPECT_TRUE(out.path_of(2).empty());  // a loop never yields a route
  EXPECT_EQ(out.path_status(4), PathStatus::kUnreached);
  // The root has no route *to* itself worth naming.
  EXPECT_EQ(out.path_status(0), PathStatus::kUnreached);
}

TEST(SptProtocol, PathStatusSelfLoopAndDeadEndChain) {
  SptOutcome out;
  out.distance = {0.0, 5.0, 3.0};
  out.first_hop = {graph::kInvalidNode, 1, 1};  // 1 names itself
  EXPECT_EQ(out.path_status(1), PathStatus::kLoop);
  EXPECT_EQ(out.path_status(2), PathStatus::kLoop);  // chain runs into it
}

TEST(SptProtocol, HonestConvergedTreeHasNoLoops) {
  const auto g = graph::make_fig2_graph();
  const auto out = run_spt_protocol(g, 0, costs_of(g), SptMode::kBasic);
  ASSERT_TRUE(out.converged);
  EXPECT_EQ(out.stats.loops_detected, 0u);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    EXPECT_EQ(out.path_status(v), PathStatus::kOk) << "node " << v;
  }
}

}  // namespace
}  // namespace tc::distsim
