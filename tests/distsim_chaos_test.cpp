// Chaos harness: the full verified pipeline (stage-1 SPT + stage-2
// payments, and the session data phase with settlement) run over the
// fault-injected radio substrate. The invariants under test:
//
//   * compound radio faults (drop + duplication + reordering) never change
//     the converged result — it stays bit-equal to the fault-free run and
//     within 1e-6 of the centralized VCG oracle, across >= 50 seeds;
//   * no honest node is ever accused, no matter what the radio does; a
//     lying node is still caught through a hostile radio;
//   * every run is a deterministic function of its fault seed;
//   * crashes degrade gracefully: a relay crashed from the start prices
//     like a node declared at infinity, a recovered node rejoins the tree,
//     a partition heals, and an articulation-point crash mid-session ends
//     in a clean disconnected result instead of a hang or a false audit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "core/vcg_unicast.hpp"
#include "distsim/ledger.hpp"
#include "distsim/payment_protocol.hpp"
#include "distsim/session.hpp"
#include "distsim/spt_protocol.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/node_graph.hpp"
#include "svc/quote_engine.hpp"

namespace tc::distsim {
namespace {

using graph::Cost;
using graph::kInfCost;
using graph::NodeId;

// The standard hostile radio used across the harness: every copy faces
// drop, duplication, and reordering at once.
net::FaultSchedule hostile_radio(std::uint64_t seed) {
  net::FaultSchedule s;
  s.link.drop = 0.25;
  s.link.duplicate = 0.1;
  s.link.reorder = 0.15;
  s.seed = seed;
  return s;
}

void expect_matches_centralized(const graph::NodeGraph& g, NodeId root,
                                const PaymentOutcome& out,
                                const std::string& context) {
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    if (i == root) continue;
    const auto central = core::vcg_payments_naive(g, i, root);
    if (!central.connected()) continue;
    for (std::size_t idx = 1; idx + 1 < central.path.size(); ++idx) {
      const NodeId k = central.path[idx];
      const auto it = out.payments[i].find(k);
      ASSERT_NE(it, out.payments[i].end())
          << context << " source " << i << " missing relay " << k;
      if (std::isinf(central.payments[k])) {
        EXPECT_TRUE(std::isinf(it->second)) << context;
      } else {
        EXPECT_NEAR(it->second, central.payments[k], 1e-6)
            << context << " source " << i << " relay " << k;
      }
    }
  }
}

// One full verified pipeline run (SPT then payments) over `faults`; the
// payment stage draws an independent fault stream from the same seed.
struct PipelineRun {
  SptOutcome spt;
  PaymentOutcome pay;
};
PipelineRun run_pipeline(const graph::NodeGraph& g, NodeId root,
                         const net::FaultSchedule& faults) {
  PipelineRun r;
  SptSchedule ss;
  ss.faults = faults;
  r.spt = run_spt_protocol(g, root, g.costs(), SptMode::kVerified, {}, 0, ss);
  PaymentSchedule ps;
  ps.faults = faults;
  ps.faults.seed = faults.seed ^ 0x7ea1;
  r.pay = run_payment_protocol(g, root, g.costs(), r.spt,
                               PaymentMode::kVerified, {}, 0, ps);
  return r;
}

TEST(Chaos, VerifiedPipelineBitEqualAcrossFiftySeeds) {
  int tested = 0;
  for (std::uint64_t seed = 1; seed <= 120 && tested < 50; ++seed) {
    const auto g = graph::make_erdos_renyi(12, 0.35, 0.5, 5.0, seed);
    if (!graph::is_connected(g)) continue;
    ++tested;
    const PipelineRun oracle = run_pipeline(g, 0, net::FaultSchedule{});
    ASSERT_TRUE(oracle.spt.converged && oracle.pay.converged);

    const PipelineRun chaos = run_pipeline(g, 0, hostile_radio(seed * 977));
    ASSERT_TRUE(chaos.spt.converged) << "seed " << seed;
    ASSERT_TRUE(chaos.pay.converged) << "seed " << seed;
    // Zero accusations: radio faults must never look like cheating.
    EXPECT_TRUE(chaos.spt.stats.accusations.empty()) << "seed " << seed;
    EXPECT_TRUE(chaos.pay.stats.accusations.empty()) << "seed " << seed;
    // The converged tree and payments are bit-equal to the fault-free run.
    EXPECT_EQ(chaos.spt.distance, oracle.spt.distance) << "seed " << seed;
    EXPECT_EQ(chaos.spt.first_hop, oracle.spt.first_hop) << "seed " << seed;
    for (NodeId i = 0; i < g.num_nodes(); ++i) {
      EXPECT_EQ(chaos.pay.payments[i], oracle.pay.payments[i])
          << "seed " << seed << " source " << i;
    }
    // And within float tolerance of the centralized VCG oracle.
    expect_matches_centralized(g, 0, chaos.pay,
                               "seed " + std::to_string(seed));
    // The faults actually bit: the reliable layer had work to do.
    EXPECT_GT(chaos.spt.stats.net.radio.copies_dropped, 0u);
    EXPECT_GT(chaos.spt.stats.net.channel.retransmissions, 0u);
  }
  EXPECT_EQ(tested, 50);
}

TEST(Chaos, RunIsDeterministicByFaultSeed) {
  const auto g = graph::make_erdos_renyi(14, 0.3, 0.5, 5.0, 6);
  ASSERT_TRUE(graph::is_connected(g));
  const PipelineRun a = run_pipeline(g, 0, hostile_radio(31337));
  const PipelineRun b = run_pipeline(g, 0, hostile_radio(31337));
  EXPECT_EQ(a.spt.stats.rounds, b.spt.stats.rounds);
  EXPECT_EQ(a.spt.stats.net.radio.copies_dropped,
            b.spt.stats.net.radio.copies_dropped);
  EXPECT_EQ(a.pay.stats.net.channel.retransmissions,
            b.pay.stats.net.channel.retransmissions);
  EXPECT_EQ(a.spt.distance, b.spt.distance);
  for (NodeId i = 0; i < g.num_nodes(); ++i)
    EXPECT_EQ(a.pay.payments[i], b.pay.payments[i]);
  // A different fault seed changes the radio trace but not the fixpoint.
  const PipelineRun c = run_pipeline(g, 0, hostile_radio(99991));
  EXPECT_EQ(a.spt.distance, c.spt.distance);
  for (NodeId i = 0; i < g.num_nodes(); ++i)
    EXPECT_EQ(a.pay.payments[i], c.pay.payments[i]);
}

TEST(Chaos, RelayCrashedFromStartPricesLikeDeclaredInfinity) {
  const NodeId crashed = 4;
  int tested = 0;
  for (std::uint64_t seed = 1; seed <= 40 && tested < 5; ++seed) {
    const auto g = graph::make_erdos_renyi(10, 0.45, 0.5, 5.0, seed);
    if (!graph::is_connected(g)) continue;
    // Reference: the same network with the crashed relay declared at
    // infinity (the engine's mark_node_down view of a crash).
    std::vector<Cost> declared = g.costs();
    declared[crashed] = kInfCost;
    SptSchedule ref_ss;
    const auto ref_spt = run_spt_protocol(g, 0, declared, SptMode::kVerified);
    if (!std::all_of(ref_spt.distance.begin(), ref_spt.distance.end(),
                     [&](Cost d) { return graph::finite_cost(d); })) {
      continue;  // crashed node is a cut vertex here; not this test's story
    }
    ++tested;
    const auto ref_pay = run_payment_protocol(g, 0, declared, ref_spt,
                                              PaymentMode::kVerified);

    net::FaultSchedule faults;
    faults.crashes.push_back({crashed, /*crash_round=*/1, net::kNever});
    faults.seed = seed * 31;
    const PipelineRun down = run_pipeline(g, 0, faults);
    ASSERT_TRUE(down.spt.converged) << "seed " << seed;
    ASSERT_TRUE(down.pay.converged) << "seed " << seed;
    EXPECT_TRUE(down.spt.stats.accusations.empty());
    EXPECT_TRUE(down.pay.stats.accusations.empty());
    EXPECT_FALSE(graph::finite_cost(down.spt.distance[crashed]));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == crashed) continue;
      EXPECT_EQ(down.spt.distance[v], ref_spt.distance[v])
          << "seed " << seed << " node " << v;
      EXPECT_EQ(down.spt.first_hop[v], ref_spt.first_hop[v])
          << "seed " << seed << " node " << v;
      if (v == 0) continue;
      EXPECT_EQ(down.pay.payments[v], ref_pay.payments[v])
          << "seed " << seed << " source " << v;
    }
  }
  EXPECT_GE(tested, 3);
}

TEST(Chaos, RecoveredRelayRejoinsTheTree) {
  const auto g = graph::make_erdos_renyi(10, 0.4, 0.5, 5.0, 11);
  ASSERT_TRUE(graph::is_connected(g));
  const PipelineRun oracle = run_pipeline(g, 0, net::FaultSchedule{});
  net::FaultSchedule faults;
  faults.crashes.push_back({5, /*crash_round=*/2, /*recover_round=*/12});
  faults.seed = 47;
  const PipelineRun run = run_pipeline(g, 0, faults);
  ASSERT_TRUE(run.spt.converged && run.pay.converged);
  EXPECT_TRUE(run.spt.stats.accusations.empty());
  EXPECT_TRUE(run.pay.stats.accusations.empty());
  EXPECT_EQ(run.spt.stats.loops_detected, 0u);
  // The rebooted node relearns everything: final state is the fault-free
  // tree and the fault-free payments, bit for bit.
  EXPECT_EQ(run.spt.distance, oracle.spt.distance);
  EXPECT_EQ(run.spt.first_hop, oracle.spt.first_hop);
  for (NodeId i = 0; i < g.num_nodes(); ++i)
    EXPECT_EQ(run.pay.payments[i], oracle.pay.payments[i]);
}

TEST(Chaos, PartitionHealsAndConverges) {
  const auto g = graph::make_erdos_renyi(10, 0.4, 0.5, 5.0, 11);
  ASSERT_TRUE(graph::is_connected(g));
  const PipelineRun oracle = run_pipeline(g, 0, net::FaultSchedule{});
  net::FaultSchedule faults;
  faults.partitions.push_back({{3, 7}, /*start_round=*/1, /*end_round=*/15});
  faults.seed = 53;
  const PipelineRun run = run_pipeline(g, 0, faults);
  ASSERT_TRUE(run.spt.converged && run.pay.converged);
  EXPECT_TRUE(run.spt.stats.accusations.empty());
  EXPECT_TRUE(run.pay.stats.accusations.empty());
  EXPECT_EQ(run.spt.distance, oracle.spt.distance);
  EXPECT_EQ(run.spt.first_hop, oracle.spt.first_hop);
  for (NodeId i = 0; i < g.num_nodes(); ++i)
    EXPECT_EQ(run.pay.payments[i], oracle.pay.payments[i]);
}

TEST(Chaos, LiarStillCaughtThroughHostileRadio) {
  const auto g = graph::make_fig4_graph();
  const auto spt = exact_spt(g, 0);
  std::vector<PaymentBehavior> behaviors(g.num_nodes());
  behaviors[8].broadcast_scale = 0.5;
  PaymentSchedule schedule;
  schedule.faults = hostile_radio(271828);
  const auto out = run_payment_protocol(g, 0, g.costs(), spt,
                                        PaymentMode::kVerified, behaviors, 0,
                                        schedule);
  ASSERT_TRUE(out.converged);
  ASSERT_FALSE(out.stats.accusations.empty());
  for (const auto& a : out.stats.accusations) {
    EXPECT_EQ(a.accused, 8u) << "honest node " << a.accused
                             << " accused by " << a.accuser;
  }
  expect_matches_centralized(g, 0, out, "liar-under-chaos");
}

// --- Session data phase: crash detection, re-quote, settlement ----------

// Diamond: source 3 reaches root 0 via relay 1 (cost 1) or relay 2
// (cost 5). With only these two disjoint routes, losing one relay makes
// the other a monopoly (infinite VCG payment).
graph::NodeGraph make_diamond() {
  graph::NodeGraphBuilder b(4);
  b.set_costs({0.0, 1.0, 5.0, 1.0});
  b.add_edge(0, 1).add_edge(0, 2).add_edge(1, 3).add_edge(2, 3);
  return b.build();
}

// Diamond plus a third disjoint route via relay 4 (cost 9), so one relay
// crash still leaves a competitively priced network.
graph::NodeGraph make_triple_diamond() {
  graph::NodeGraphBuilder b(5);
  b.set_costs({0.0, 1.0, 5.0, 1.0, 9.0});
  b.add_edge(0, 1).add_edge(0, 2).add_edge(0, 4);
  b.add_edge(1, 3).add_edge(2, 3).add_edge(3, 4);
  return b.build();
}

TEST(Chaos, ArticulationPointCrashEndsSessionCleanly) {
  const auto g = make_diamond();
  svc::QuoteEngine engine(g, 0);
  Ledger ledger(g.num_nodes(), /*master_seed=*/42);
  ledger.fund_all(50.0);

  SessionConfig config;
  config.data_packets = 3;
  config.data_faults.crashes.push_back({1, /*crash_round=*/1, net::kNever});
  const SessionResult r =
      run_session(g, 0, g.costs(), 3, config, engine, ledger);

  // Relay 1 crashed; the only alternative (relay 2) is now a monopoly, so
  // the session ends disconnected — cleanly: detected, re-quoted once,
  // nothing settled, nobody accused, no hang at the round budget.
  EXPECT_TRUE(r.relay_crash_detected);
  EXPECT_TRUE(r.disconnected);
  EXPECT_EQ(r.requotes, 1u);
  EXPECT_TRUE(r.route.empty());
  EXPECT_TRUE(std::isinf(r.total_payment));
  EXPECT_EQ(r.packets_settled, 0u);
  EXPECT_FALSE(r.cheating_detected());
  EXPECT_TRUE(engine.node_down(1));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(ledger.balance(v), 50.0) << "node " << v;
  }
}

TEST(Chaos, RelayCrashTriggersRequoteAndPacketsStillSettle) {
  const auto g = make_triple_diamond();
  svc::QuoteEngine engine(g, 0);
  Ledger ledger(g.num_nodes(), /*master_seed=*/43);
  ledger.fund_all(100.0);

  SessionConfig config;
  config.data_packets = 3;
  config.data_faults.crashes.push_back({1, /*crash_round=*/1, net::kNever});
  const SessionResult r =
      run_session(g, 0, g.costs(), 3, config, engine, ledger);

  EXPECT_TRUE(r.relay_crash_detected);
  EXPECT_FALSE(r.disconnected);
  EXPECT_EQ(r.requotes, 1u);
  // The replacement route runs through relay 2 at its VCG price (the next
  // alternative costs 9).
  ASSERT_EQ(r.route, (std::vector<NodeId>{3, 2, 0}));
  EXPECT_DOUBLE_EQ(r.total_payment, 9.0);
  EXPECT_EQ(r.packets_settled, 3u);
  // Faulted data phase: every settle is retransmitted once by the harness
  // and absorbed as an idempotent no-op ack.
  EXPECT_EQ(r.duplicate_settles, 3u);
  EXPECT_EQ(ledger.duplicate_acks(), 3u);
  EXPECT_FALSE(r.cheating_detected());
  // The source paid exactly once per packet; relay 2 was paid its price.
  EXPECT_DOUBLE_EQ(ledger.balance(3), 100.0 - 3 * 9.0);
  EXPECT_DOUBLE_EQ(ledger.balance(2), 100.0 + 3 * 9.0);
  EXPECT_DOUBLE_EQ(ledger.balance(1), 100.0);
}

TEST(Chaos, LossyDataPhaseSettlesEveryPacketExactlyOnce) {
  const auto g = make_diamond();
  svc::QuoteEngine engine(g, 0);
  Ledger ledger(g.num_nodes(), /*master_seed=*/44);
  ledger.fund_all(100.0);

  SessionConfig config;
  config.data_packets = 5;
  config.data_faults = net::FaultSchedule::uniform_loss(0.25, 1213);
  // Patient channel: under pure loss a give-up would be a false crash
  // alarm, so the data phase waits out the retransmissions.
  config.data_channel = net::ReliableConfig{.rto_base = 2, .rto_cap = 8,
                                            .max_attempts = 16};
  const SessionResult r =
      run_session(g, 0, g.costs(), 3, config, engine, ledger);

  EXPECT_FALSE(r.disconnected);
  EXPECT_FALSE(r.relay_crash_detected);
  EXPECT_EQ(r.requotes, 0u);
  EXPECT_EQ(r.packets_settled, 5u);
  EXPECT_EQ(r.duplicate_settles, 5u);
  EXPECT_EQ(ledger.duplicate_acks(), 5u);
  EXPECT_DOUBLE_EQ(r.total_payment, 5.0);  // relay 1's VCG price
  EXPECT_DOUBLE_EQ(ledger.balance(3), 100.0 - 5 * 5.0);
  EXPECT_DOUBLE_EQ(ledger.balance(1), 100.0 + 5 * 5.0);
}

}  // namespace
}  // namespace tc::distsim
