#include "core/neighbor_collusion.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/vcg_unicast.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace tc::core {
namespace {

using graph::NodeId;

TEST(NeighborScheme, ClosedNeighborhoodContents) {
  const auto g = graph::make_ring(6);
  const auto n = closed_neighborhood(g, 2);
  EXPECT_EQ(n.size(), 3u);
  EXPECT_NE(std::find(n.begin(), n.end(), 2u), n.end());
  EXPECT_NE(std::find(n.begin(), n.end(), 1u), n.end());
  EXPECT_NE(std::find(n.begin(), n.end(), 3u), n.end());
}

TEST(NeighborScheme, PaysAtLeastVcg) {
  // ||P_{-N(k)}|| >= ||P_{-k}||, so p~ dominates the plain VCG payment for
  // on-path relays — the paper notes p~ is optimal among such schemes.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto g = graph::make_erdos_renyi(14, 0.5, 0.5, 5.0, seed);
    if (!graph::is_biconnected(g) || !graph::neighborhood_removal_safe(g))
      continue;
    const auto vcg = vcg_payments_naive(g, 1, 0);
    const auto nbr = neighbor_resistant_payments(g, 1, 0);
    if (!vcg.connected()) continue;
    ASSERT_EQ(vcg.path, nbr.path);
    for (std::size_t i = 1; i + 1 < vcg.path.size(); ++i) {
      const NodeId k = vcg.path[i];
      EXPECT_GE(nbr.payments[k], vcg.payments[k] - 1e-9) << "seed " << seed;
    }
  }
}

TEST(NeighborScheme, OffPathNeighborOfRelayCanEarn) {
  // A node off the LCP whose removal-with-neighborhood hurts the route
  // receives positive option value (the paper's "could be positive").
  graph::NodeGraphBuilder b(7);
  b.set_node_cost(1, 1.0).set_node_cost(2, 1.0);          // LCP relays
  b.set_node_cost(3, 3.0).set_node_cost(4, 3.0);          // alt route
  b.set_node_cost(5, 20.0).set_node_cost(6, 20.0);        // backstop
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 6);
  b.add_edge(0, 3).add_edge(3, 4).add_edge(4, 6);
  b.add_edge(0, 5).add_edge(5, 6);
  b.add_edge(3, 1);  // node 3 neighbors relay 1
  const auto g = b.build();
  const auto r = neighbor_resistant_payments(g, 0, 6);
  ASSERT_EQ(r.path, (std::vector<NodeId>{0, 1, 2, 6}));
  // Removing N(3) = {3, 0?, ...} — node 3's neighborhood includes relay 1,
  // so the route degrades and 3 earns option value while off the path.
  EXPECT_GT(r.payments[3], 0.0);
}

TEST(NeighborScheme, IrrelevantNodeEarnsZero) {
  graph::NodeGraphBuilder b(8);
  b.set_node_cost(1, 1.0);
  b.set_node_cost(3, 5.0).set_node_cost(4, 5.0);
  b.set_node_cost(5, 9.0).set_node_cost(6, 9.0).set_node_cost(7, 9.0);
  b.add_edge(0, 1).add_edge(1, 2);
  b.add_edge(0, 3).add_edge(3, 4).add_edge(4, 2);
  b.add_edge(0, 5).add_edge(5, 6).add_edge(6, 7).add_edge(7, 2);
  const auto g = b.build();
  const auto r = neighbor_resistant_payments(g, 0, 2);
  // Node 6 is far from the LCP and its neighborhood doesn't touch it.
  EXPECT_DOUBLE_EQ(r.payments[6], 0.0);
}

TEST(NeighborScheme, MonopolyNeighborhoodFlaggedInfinite) {
  // On a bare path every relay's closed neighborhood separates the
  // endpoints: the scheme's precondition fails and payments are unbounded.
  const auto g = graph::make_path(5, 1.0);
  const auto r = neighbor_resistant_payments(g, 0, 4);
  for (NodeId k = 1; k <= 3; ++k) EXPECT_TRUE(std::isinf(r.payments[k]));
}

TEST(QSetScheme, SingletonDegeneratesToVcg) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto g = graph::make_erdos_renyi(16, 0.35, 0.5, 5.0, seed);
    if (!graph::is_biconnected(g)) continue;
    const auto vcg = vcg_payments_naive(g, 1, 0);
    const auto q = q_set_payments(
        g, 1, 0, [](const graph::NodeGraph&, NodeId v) {
          return std::vector<NodeId>{v};
        });
    if (!vcg.connected()) continue;
    ASSERT_EQ(vcg.path, q.path);
    for (std::size_t i = 1; i + 1 < vcg.path.size(); ++i) {
      const NodeId k = vcg.path[i];
      EXPECT_NEAR(q.payments[k], vcg.payments[k], 1e-9) << "seed " << seed;
    }
  }
}

TEST(QSetScheme, LargerSetsPayMore) {
  // Monotonicity: Q ⊆ Q' implies p_Q <= p_Q' (removing more can't help).
  const auto g = graph::make_grid(3, 3, 2.0);
  const auto singleton = q_set_payments(
      g, 1, 0,
      [](const graph::NodeGraph&, NodeId v) { return std::vector<NodeId>{v}; });
  const auto pair_sets = q_set_payments(
      g, 1, 0, [](const graph::NodeGraph& graph, NodeId v) {
        std::vector<NodeId> q{v};
        // Add one fixed extra member (wrap around; skip endpoints happens
        // inside the engine).
        q.push_back(static_cast<NodeId>((v + 1) % graph.num_nodes()));
        return q;
      });
  for (NodeId k = 0; k < 9; ++k) {
    if (k == 1 || k == 0) continue;
    if (std::isinf(pair_sets.payments[k])) continue;
    EXPECT_GE(pair_sets.payments[k], singleton.payments[k] - 1e-9);
  }
}

TEST(QSetScheme, RequiresSelfMembership) {
  const auto g = graph::make_ring(6);
  EXPECT_DEATH(q_set_payments(g, 0, 3,
                              [](const graph::NodeGraph&, NodeId) {
                                return std::vector<NodeId>{};
                              }),
               "Q\\(v\\) must contain v");
}

}  // namespace
}  // namespace tc::core
