#include "distsim/nuglet_counter.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace tc::distsim {
namespace {

using graph::NodeId;

TEST(NugletCounter, OneHopTrafficAlwaysFree) {
  // Direct neighbors of the AP pay nothing and never block.
  const auto g = graph::make_complete(5, 1.0);
  NugletConfig config;
  config.rounds = 10;
  const auto stats = simulate_nuglet_counters(g, 0, config);
  EXPECT_EQ(stats.delivered, stats.attempts);
  EXPECT_EQ(stats.blocked_poor, 0u);
}

TEST(NugletCounter, FarNodesStarve) {
  // A long chain: the far end needs many nuglets per packet but earns
  // nothing (nobody routes through the last node), so it runs dry.
  const auto g = graph::make_path(8, 1.0);
  NugletConfig config;
  config.initial_nuglets = 13.0;
  config.rounds = 50;
  config.cost_rational = false;  // isolate the counter dynamics
  const auto stats = simulate_nuglet_counters(g, 0, config);
  // Node 7 (6 relays per packet, earns nothing) affords exactly two
  // packets on 13 nuglets; the counter must stay strictly positive.
  EXPECT_EQ(stats.per_node_delivered[7], 2u);
  // Node 1 sends for free (no relays) every round.
  EXPECT_EQ(stats.per_node_delivered[1], 50u);
  EXPECT_GT(stats.blocked_poor, 0u);
}

TEST(NugletCounter, RelayingFundsSending) {
  // An interior node earns more than it spends and never blocks.
  const auto g = graph::make_path(4, 1.0);
  NugletConfig config;
  config.initial_nuglets = 5.0;
  config.rounds = 30;
  config.cost_rational = false;
  const auto stats = simulate_nuglet_counters(g, 0, config);
  // Node 1 relays for 2 and 3 (earning 2/round) and pays 0 (one hop).
  EXPECT_GT(stats.final_counters[1], config.initial_nuglets);
  EXPECT_EQ(stats.per_node_delivered[1], 30u);
}

TEST(NugletCounter, CostRationalityStrandsTraffic) {
  // With heterogeneous costs, expensive relays refuse and strand whole
  // branches — the paper's core critique of fixed-value nuglets.
  graph::NodeGraphBuilder b(5);
  b.set_node_cost(1, 1.0).set_node_cost(2, 5.0).set_node_cost(3, 1.0);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3).add_edge(3, 4);
  const auto g = b.build();
  NugletConfig config;
  config.nuglet_value = 2.0;  // node 2 (cost 5) refuses
  config.rounds = 5;
  const auto stats = simulate_nuglet_counters(g, 0, config);
  EXPECT_EQ(stats.per_node_delivered[3], 0u);
  EXPECT_EQ(stats.per_node_delivered[4], 0u);
  EXPECT_GT(stats.blocked_refusal, 0u);
  // The same network with idealized cooperation delivers everything the
  // counters allow.
  config.cost_rational = false;
  const auto ideal = simulate_nuglet_counters(g, 0, config);
  EXPECT_GT(ideal.per_node_delivered[4], 0u);
}

TEST(NugletCounter, CountersConserveTotal) {
  // Nuglets are transfers between nodes: total = initial total minus what
  // originators paid plus what relays earned — equal when every charged
  // nuglet lands at a relay (all routes end at the free AP).
  const auto g = graph::make_ring(8, 1.0);
  NugletConfig config;
  config.rounds = 20;
  config.cost_rational = false;
  const auto stats = simulate_nuglet_counters(g, 0, config);
  double total = 0.0;
  for (double c : stats.final_counters) total += c;
  EXPECT_NEAR(total, config.initial_nuglets * 8, 1e-9);
}

TEST(NugletCounter, DeliveryRateDefinition) {
  NugletOutcomeStats stats;
  stats.attempts = 10;
  stats.delivered = 4;
  EXPECT_DOUBLE_EQ(stats.delivery_rate(), 0.4);
}

}  // namespace
}  // namespace tc::distsim
