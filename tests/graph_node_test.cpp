#include "graph/node_graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/mask.hpp"

namespace tc::graph {
namespace {

NodeGraph triangle() {
  NodeGraphBuilder b(3);
  b.set_node_cost(0, 1.0).set_node_cost(1, 2.0).set_node_cost(2, 3.0);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
  return b.build();
}

TEST(NodeGraph, BasicCounts) {
  const NodeGraph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(NodeGraph, CostsStored) {
  const NodeGraph g = triangle();
  EXPECT_DOUBLE_EQ(g.node_cost(0), 1.0);
  EXPECT_DOUBLE_EQ(g.node_cost(2), 3.0);
}

TEST(NodeGraph, SetCostMutates) {
  NodeGraph g = triangle();
  g.set_node_cost(1, 9.5);
  EXPECT_DOUBLE_EQ(g.node_cost(1), 9.5);
}

TEST(NodeGraph, SetCostsWholeVector) {
  NodeGraph g = triangle();
  g.set_costs({7.0, 8.0, 9.0});
  EXPECT_DOUBLE_EQ(g.node_cost(0), 7.0);
  EXPECT_DOUBLE_EQ(g.node_cost(2), 9.0);
}

TEST(NodeGraph, NeighborsSortedAndSymmetric) {
  const NodeGraph g = triangle();
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
}

TEST(NodeGraph, HasEdgeNegative) {
  NodeGraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  const NodeGraph g = b.build();
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 3));
}

TEST(NodeGraph, DuplicateEdgesDeduplicated) {
  NodeGraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 0).add_edge(0, 1);
  const NodeGraph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(NodeGraph, EdgesListCanonical) {
  const NodeGraph g = triangle();
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(NodeGraph, IsolatedNodeAllowed) {
  NodeGraphBuilder b(3);
  b.add_edge(0, 1);
  const NodeGraph g = b.build();
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_TRUE(g.neighbors(2).empty());
}

TEST(NodeGraphBuilder, RejectsSelfLoop) {
  NodeGraphBuilder b(2);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
}

TEST(NodeGraphBuilder, RejectsOutOfRangeEdge) {
  NodeGraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 5), std::invalid_argument);
}

TEST(NodeGraphBuilder, RejectsNegativeCost) {
  NodeGraphBuilder b(2);
  EXPECT_THROW(b.set_node_cost(0, -1.0), std::invalid_argument);
  EXPECT_THROW(b.set_costs({1.0, -0.5}), std::invalid_argument);
}

TEST(NodeGraphBuilder, RejectsWrongSizeVectors) {
  NodeGraphBuilder b(3);
  EXPECT_THROW(b.set_costs({1.0}), std::invalid_argument);
  EXPECT_THROW(b.set_positions({{0, 0}}), std::invalid_argument);
}

TEST(NodeGraph, PositionsRoundTrip) {
  NodeGraphBuilder b(2);
  b.add_edge(0, 1);
  b.set_positions({{1.0, 2.0}, {3.0, 4.0}});
  const NodeGraph g = b.build();
  ASSERT_TRUE(g.has_positions());
  EXPECT_DOUBLE_EQ(g.position(1).x, 3.0);
}

TEST(NodeGraph, NoPositionsByDefault) {
  EXPECT_FALSE(triangle().has_positions());
}

TEST(NodeMask, EmptyMaskAllowsEverything) {
  NodeMask m;
  EXPECT_TRUE(m.allowed(0));
  EXPECT_TRUE(m.allowed(1000));
}

TEST(NodeMask, BlockAndUnblock) {
  NodeMask m(5);
  EXPECT_TRUE(m.allowed(3));
  m.block(3);
  EXPECT_FALSE(m.allowed(3));
  EXPECT_TRUE(m.allowed(2));
  m.unblock(3);
  EXPECT_TRUE(m.allowed(3));
}

TEST(NodeMask, BlockingFactory) {
  const auto m = NodeMask::blocking(6, {1, 4});
  EXPECT_FALSE(m.allowed(1));
  EXPECT_FALSE(m.allowed(4));
  EXPECT_TRUE(m.allowed(0));
  EXPECT_EQ(m.blocked_count(), 2u);
}

}  // namespace
}  // namespace tc::graph
