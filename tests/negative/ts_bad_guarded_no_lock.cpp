// MUST NOT COMPILE under -Werror=thread-safety-analysis: writes a
// TC_GUARDED_BY member without holding its mutex. This is the exact bug
// class the serving-layer annotations exist to reject at compile time
// (see tools/negative_compile_test.py, which asserts the rejection).
#include "util/thread_annotations.hpp"

namespace tc {

class Account {
 public:
  void deposit(double amount) {
    balance_ += amount;  // no lock held: the analysis must flag this
  }

  double balance() const {
    util::MutexLock lock(mu_);
    return balance_;
  }

 private:
  mutable util::Mutex mu_;
  double balance_ TC_GUARDED_BY(mu_) = 0.0;
};

}  // namespace tc
