// MUST NOT COMPILE under -Werror=thread-safety-analysis: calls a
// TC_REQUIRES(mu_) function without holding mu_. Mirrors QuoteEngine's
// private `*_locked` writer helpers — calling one outside the writer
// mutex is the lock-discipline bug the annotations close off.
#include "util/thread_annotations.hpp"

namespace tc {

class Book {
 public:
  void publish() {
    flush_locked();  // mu_ not held: the analysis must flag this
  }

 private:
  void flush_locked() TC_REQUIRES(mu_) { ++epoch_; }

  util::Mutex mu_;
  unsigned long epoch_ TC_GUARDED_BY(mu_) = 0;
};

}  // namespace tc
