// MUST NOT COMPILE under -Werror=thread-safety-analysis: a manual
// lock() with no matching unlock() on one path. Scoped MutexLock
// acquisition makes this shape unwritable; this fixture pins down that
// the analysis catches the manual variant too.
#include "util/thread_annotations.hpp"

namespace tc {

class Counter {
 public:
  void poke(bool fast) {
    mu_.lock();
    ++count_;
    if (fast) return;  // leaks the capability: the analysis must flag this
    mu_.unlock();
  }

 private:
  util::Mutex mu_;
  int count_ TC_GUARDED_BY(mu_) = 0;
};

}  // namespace tc
