// MUST COMPILE cleanly under -Werror=thread-safety-analysis: the same
// shapes as the ts_bad_* fixtures, written with the discipline the
// annotations demand. Positive control — proves a clean build means
// "the analysis ran and approved", not "the macros expanded to nothing".
#include "util/thread_annotations.hpp"

namespace tc {

class Account {
 public:
  void deposit(double amount) {
    util::MutexLock lock(mu_);
    balance_ += amount;
  }

  double balance() const {
    util::MutexLock lock(mu_);
    return balance_;
  }

 private:
  mutable util::Mutex mu_;
  double balance_ TC_GUARDED_BY(mu_) = 0.0;
};

class Book {
 public:
  void publish() {
    util::MutexLock lock(mu_);
    flush_locked();
  }

  void wait_for_epoch(unsigned long target) {
    util::MutexLock lock(mu_);
    while (epoch_ < target) cv_.wait(mu_);
  }

  void bump() {
    {
      util::MutexLock lock(mu_);
      flush_locked();
    }
    cv_.notify_all();
  }

 private:
  void flush_locked() TC_REQUIRES(mu_) { ++epoch_; }

  util::Mutex mu_;
  util::CondVar cv_;
  unsigned long epoch_ TC_GUARDED_BY(mu_) = 0;
};

class Registry {
 public:
  int read() const {
    util::SharedReaderLock lock(mu_);
    return value_;
  }

  void write(int v) {
    util::SharedMutexLock lock(mu_);
    value_ = v;
  }

 private:
  mutable util::SharedMutex mu_;
  int value_ TC_GUARDED_BY(mu_) = 0;
};

}  // namespace tc
