#include "spath/dijkstra.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace tc::spath {
namespace {

using graph::kInfCost;
using graph::NodeId;

TEST(DijkstraNode, PathCostExcludesEndpoints) {
  // 0 - 1 - 2 - 3 with unit costs: interior cost of 0..3 is c1 + c2 = 2.
  const auto g = graph::make_path(4, 1.0);
  const SptResult r = dijkstra_node(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[3], 2.0);
  EXPECT_DOUBLE_EQ(r.dist[1], 0.0);  // direct neighbor: no relays
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
}

TEST(DijkstraNode, PicksCheaperRelay) {
  // 0 connects to 3 via 1 (cost 5) or 2 (cost 1).
  graph::NodeGraphBuilder b(4);
  b.set_node_cost(1, 5.0).set_node_cost(2, 1.0);
  b.add_edge(0, 1).add_edge(1, 3).add_edge(0, 2).add_edge(2, 3);
  const SptResult r = dijkstra_node(b.build(), 0);
  EXPECT_DOUBLE_EQ(r.dist[3], 1.0);
  EXPECT_EQ(r.path_to(3), (std::vector<NodeId>{0, 2, 3}));
}

TEST(DijkstraNode, ExpensiveSourceCostIgnored) {
  graph::NodeGraphBuilder b(3);
  b.set_node_cost(0, 1000.0).set_node_cost(1, 1.0).set_node_cost(2, 1000.0);
  b.add_edge(0, 1).add_edge(1, 2);
  const SptResult r = dijkstra_node(b.build(), 0);
  EXPECT_DOUBLE_EQ(r.dist[2], 1.0);  // endpoints' costs excluded
}

TEST(DijkstraNode, UnreachableIsInfinite) {
  graph::NodeGraphBuilder b(4);
  b.add_edge(0, 1);
  const SptResult r = dijkstra_node(b.build(), 0);
  EXPECT_FALSE(r.reached(3));
  EXPECT_TRUE(r.path_to(3).empty());
}

TEST(DijkstraNode, MaskBlocksRelay) {
  const auto g = graph::make_path(4, 1.0);
  graph::NodeMask mask(4);
  mask.block(1);
  const SptResult r = dijkstra_node(g, 0, mask);
  EXPECT_FALSE(r.reached(3));
}

TEST(DijkstraNode, MaskForcesDetour) {
  // Square 0-1-2 and 0-3-2; block 1.
  graph::NodeGraphBuilder b(4);
  b.set_node_cost(1, 1.0).set_node_cost(3, 7.0);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 3).add_edge(3, 2);
  graph::NodeMask mask(4);
  mask.block(1);
  const SptResult r = dijkstra_node(b.build(), 0, mask);
  EXPECT_DOUBLE_EQ(r.dist[2], 7.0);
  EXPECT_EQ(r.path_to(2), (std::vector<NodeId>{0, 3, 2}));
}

TEST(DijkstraNode, ZeroCostRelays) {
  const auto g = graph::make_path(5, 0.0);
  const SptResult r = dijkstra_node(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[4], 0.0);
  EXPECT_EQ(r.path_to(4).size(), 5u);
}

TEST(DijkstraNode, QuadHeapAgrees) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto g = graph::make_erdos_renyi(60, 0.1, 0.1, 9.0, seed);
    const SptResult a = dijkstra_node(g, 0);
    const SptResult b = dijkstra_node_quad(g, 0);
    for (NodeId v = 0; v < 60; ++v) {
      if (a.reached(v)) {
        EXPECT_NEAR(a.dist[v], b.dist[v], 1e-12);
      } else {
        EXPECT_FALSE(b.reached(v));
      }
    }
  }
}

TEST(DijkstraNode, PathIsValidWalk) {
  const auto g = graph::make_erdos_renyi(40, 0.15, 0.5, 4.0, 3);
  const SptResult r = dijkstra_node(g, 0);
  for (NodeId t = 1; t < 40; ++t) {
    if (!r.reached(t)) continue;
    const auto path = r.path_to(t);
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), t);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
    }
    EXPECT_NEAR(path_interior_cost(g, path), r.dist[t], 1e-9);
  }
}

TEST(DijkstraLink, DirectedCosts) {
  graph::LinkGraphBuilder b(3);
  b.add_arc(0, 1, 2.0).add_arc(1, 2, 3.0).add_arc(2, 0, 1.0);
  const SptResult r = dijkstra_link(b.build(), 0);
  EXPECT_DOUBLE_EQ(r.dist[2], 5.0);
  EXPECT_FALSE(std::isinf(r.dist[1]));
}

TEST(DijkstraLink, RespectsDirection) {
  graph::LinkGraphBuilder b(2);
  b.add_arc(0, 1, 1.0);
  const SptResult r = dijkstra_link(b.build(), 1);
  EXPECT_FALSE(r.reached(0));
}

TEST(DijkstraLink, InfiniteArcsUnusable) {
  graph::LinkGraphBuilder b(3);
  b.add_arc(0, 1, kInfCost).add_arc(0, 2, 1.0).add_arc(2, 1, 1.0);
  const SptResult r = dijkstra_link(b.build(), 0);
  EXPECT_DOUBLE_EQ(r.dist[1], 2.0);  // must detour via 2
}

TEST(DijkstraLink, ToTargetMatchesForwardOnReverse) {
  util::Rng rng(4);
  graph::LinkGraphBuilder b(30);
  for (int e = 0; e < 150; ++e) {
    const auto u = static_cast<NodeId>(rng.next_below(30));
    const auto v = static_cast<NodeId>(rng.next_below(30));
    if (u != v) b.add_arc(u, v, rng.uniform(0.1, 5.0));
  }
  const graph::LinkGraph g = b.build();
  const SptResult to_zero = dijkstra_link_to_target(g, 0);
  // Check against per-source forward searches.
  for (NodeId s = 1; s < 30; ++s) {
    const SptResult fwd = dijkstra_link(g, s);
    if (fwd.reached(0)) {
      EXPECT_NEAR(to_zero.dist[s], fwd.dist[0], 1e-9) << "source " << s;
    } else {
      EXPECT_FALSE(to_zero.reached(s));
    }
  }
}

TEST(DijkstraLink, NodeModelEquivalence) {
  // dist in to_link_graph differs from node-model dist by exactly the
  // source's node cost (the lifted arc charges the sender).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = graph::make_erdos_renyi(25, 0.2, 0.5, 5.0, seed);
    const auto lg = graph::to_link_graph(g);
    const SptResult node = dijkstra_node(g, 3);
    const SptResult link = dijkstra_link(lg, 3);
    for (NodeId v = 0; v < 25; ++v) {
      if (v == 3 || !node.reached(v)) continue;
      // Link path cost counts every sender: source + relays; node path
      // cost counts relays only.
      EXPECT_NEAR(link.dist[v], node.dist[v] + g.node_cost(3), 1e-9);
    }
  }
}

TEST(PathCosts, ArcCostOfBrokenPathInfinite) {
  graph::LinkGraphBuilder b(3);
  b.add_arc(0, 1, 1.0);
  const auto g = b.build();
  EXPECT_TRUE(std::isinf(path_arc_cost(g, {0, 1, 2})));
  EXPECT_DOUBLE_EQ(path_arc_cost(g, {0, 1}), 1.0);
}

TEST(ReverseGraph, ArcsFlipped) {
  graph::LinkGraphBuilder b(3);
  b.add_arc(0, 1, 2.0).add_arc(1, 2, 3.0);
  const auto rev = reverse_graph(b.build());
  EXPECT_DOUBLE_EQ(rev.arc_cost(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(rev.arc_cost(2, 1), 3.0);
  EXPECT_TRUE(std::isinf(rev.arc_cost(0, 1)));
}

}  // namespace
}  // namespace tc::spath
