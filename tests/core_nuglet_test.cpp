#include "core/nuglet.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace tc::core {
namespace {

using graph::NodeId;

TEST(Nuglet, HighPriceEveryoneRelays) {
  const auto g = graph::make_ring(8, 1.0);
  const auto out = evaluate_nuglet_scheme(g, 0, 2.0);
  EXPECT_EQ(out.refusing_relays, 0u);
  EXPECT_EQ(out.delivered, 7u);
  EXPECT_DOUBLE_EQ(out.delivery_rate(), 1.0);
}

TEST(Nuglet, LowPriceCausesRefusals) {
  // Paper's critique of fixed pricing: relays with cost above the nuglet
  // value refuse, and the network partitions.
  graph::NodeGraphBuilder b(5);
  b.set_node_cost(1, 0.5).set_node_cost(2, 3.0).set_node_cost(3, 0.5);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3).add_edge(3, 4);
  const auto g = b.build();
  const auto out = evaluate_nuglet_scheme(g, 0, 1.0);
  EXPECT_EQ(out.refusing_relays, 1u);  // node 2
  // Nodes 3 and 4 are cut off behind the refusing relay.
  EXPECT_EQ(out.delivered, 2u);  // nodes 1 and 2 still reach the AP
}

TEST(Nuglet, RefusingNodeCanStillSend) {
  // A node too expensive to relay still originates its own traffic.
  graph::NodeGraphBuilder b(3);
  b.set_node_cost(1, 0.5).set_node_cost(2, 9.0);
  b.add_edge(0, 1).add_edge(1, 2);
  const auto out = evaluate_nuglet_scheme(b.build(), 0, 1.0);
  EXPECT_EQ(out.refusing_relays, 1u);
  EXPECT_EQ(out.delivered, 2u);  // node 2 sends via willing relay 1
}

TEST(Nuglet, RoutesMinimizeHopsNotCost) {
  // Two routes: 2 hops with expensive-but-willing relay vs 3 hops with
  // cheap relays. Fixed pricing charges per hop, so the source picks the
  // expensive 2-hop route — a social-cost loss VCG routing avoids.
  graph::NodeGraphBuilder b(6);
  b.set_node_cost(1, 2.0);                          // pricey single relay
  b.set_node_cost(2, 0.1).set_node_cost(3, 0.1);    // cheap chain
  b.add_edge(0, 1).add_edge(1, 5);
  b.add_edge(0, 2).add_edge(2, 3).add_edge(3, 5);
  const auto g = b.build();
  const auto out = evaluate_nuglet_scheme(g, 0, 2.5);
  // Source 5's path contributes relay cost 2.0 (via node 1), not 0.2.
  const auto vcg = evaluate_vcg_reference(g, 0);
  EXPECT_GT(out.social_cost, vcg.social_cost);
}

TEST(Nuglet, SurplusNonNegative) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto g = graph::make_erdos_renyi(20, 0.25, 0.2, 3.0, seed);
    const auto out = evaluate_nuglet_scheme(g, 0, 1.5);
    EXPECT_GE(out.relay_surplus, -1e-9);
    EXPECT_NEAR(out.total_paid, out.social_cost + out.relay_surplus, 1e-9);
  }
}

TEST(Nuglet, DeliveryMonotoneInPrice) {
  const auto g = graph::make_erdos_renyi(30, 0.15, 0.5, 5.0, 4);
  std::size_t prev = 0;
  for (double price : {0.5, 1.0, 2.0, 5.0}) {
    const auto out = evaluate_nuglet_scheme(g, 0, price);
    EXPECT_GE(out.delivered, prev) << "price " << price;
    prev = out.delivered;
  }
}

TEST(Nuglet, VcgReferenceMatchesStudy) {
  const auto g = graph::make_ring(8, 1.0);
  const auto ref = evaluate_vcg_reference(g, 0);
  EXPECT_EQ(ref.delivered, 7u);
  EXPECT_GT(ref.total_paid, 0.0);
  EXPECT_GE(ref.total_paid, ref.social_cost);
}

TEST(Nuglet, ZeroPriceOnlyDirectNeighborsDeliver) {
  const auto g = graph::make_ring(8, 1.0);
  const auto out = evaluate_nuglet_scheme(g, 0, 0.0);
  EXPECT_EQ(out.delivered, 2u);  // the AP's two ring neighbors
  EXPECT_EQ(out.refusing_relays, 7u);
}

}  // namespace
}  // namespace tc::core
