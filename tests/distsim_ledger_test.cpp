#include "distsim/ledger.hpp"

#include <gtest/gtest.h>

namespace tc::distsim {
namespace {

TEST(Ledger, FundAndBalance) {
  Ledger ledger(4, 1);
  ledger.fund_all(100.0);
  for (graph::NodeId v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ(ledger.balance(v), 100.0);
  }
}

TEST(Ledger, UpstreamSettlementMovesMoney) {
  Ledger ledger(5, 2);
  ledger.fund_all(50.0);
  const Signature sig = sign(ledger.key_of(3), packet_payload(1, 3, 0));
  const auto result =
      ledger.settle_upstream(1, 3, 0, sig, {{1, 2.5}, {2, 4.0}});
  ASSERT_TRUE(result.accepted);
  EXPECT_DOUBLE_EQ(result.charged, 6.5);
  EXPECT_DOUBLE_EQ(ledger.balance(3), 43.5);
  EXPECT_DOUBLE_EQ(ledger.balance(1), 52.5);
  EXPECT_DOUBLE_EQ(ledger.balance(2), 54.0);
  EXPECT_EQ(ledger.settlements(), 1u);
}

TEST(Ledger, ForgedSourceSignatureRejected) {
  // A relay cannot bill traffic to someone else's account: it lacks the
  // source's key (counters the "I never initiated this" dispute from the
  // other side too — the AP holds proof).
  Ledger ledger(5, 2);
  ledger.fund_all(50.0);
  const Signature forged = sign(ledger.key_of(4), packet_payload(1, 3, 0));
  const auto result = ledger.settle_upstream(1, 3, 0, forged, {{1, 2.5}});
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reject_reason, "bad source signature");
  EXPECT_DOUBLE_EQ(ledger.balance(3), 50.0);
  EXPECT_EQ(ledger.rejections(), 1u);
}

TEST(Ledger, RetransmittedSettlementIsNoOpAck) {
  // A retransmitted settlement request (identical content; its ack was
  // lost on the radio) must be acknowledged idempotently, not rejected —
  // rejecting it would make the source retry forever. Balances move once.
  Ledger ledger(4, 3);
  ledger.fund_all(10.0);
  const Signature sig = sign(ledger.key_of(2), packet_payload(7, 2, 5));
  EXPECT_TRUE(ledger.settle_upstream(7, 2, 5, sig, {{1, 1.0}}).accepted);
  const auto retransmit = ledger.settle_upstream(7, 2, 5, sig, {{1, 1.0}});
  EXPECT_TRUE(retransmit.accepted);
  EXPECT_TRUE(retransmit.duplicate);
  EXPECT_DOUBLE_EQ(retransmit.charged, 1.0);
  EXPECT_DOUBLE_EQ(ledger.balance(1), 11.0);  // paid once
  EXPECT_DOUBLE_EQ(ledger.balance(2), 9.0);   // charged once
  EXPECT_EQ(ledger.settlements(), 1u);
  EXPECT_EQ(ledger.duplicate_acks(), 1u);
  EXPECT_EQ(ledger.rejections(), 0u);
}

TEST(Ledger, ReplayWithAlteredContentRejected) {
  // Same (session, seq) but different prices is not a retransmission; it
  // is a replay attack and must still be refused.
  Ledger ledger(4, 3);
  ledger.fund_all(10.0);
  const Signature sig = sign(ledger.key_of(2), packet_payload(7, 2, 5));
  EXPECT_TRUE(ledger.settle_upstream(7, 2, 5, sig, {{1, 1.0}}).accepted);
  const auto replay = ledger.settle_upstream(7, 2, 5, sig, {{1, 2.0}});
  EXPECT_FALSE(replay.accepted);
  EXPECT_FALSE(replay.duplicate);
  EXPECT_EQ(replay.reject_reason, "replayed packet");
  EXPECT_DOUBLE_EQ(ledger.balance(1), 11.0);  // first settlement only
  EXPECT_EQ(ledger.rejections(), 1u);
}

TEST(Ledger, QuarantinedReplayKeepsForensicRecordAndFreshSeqsUsable) {
  // The replayer playbook (distsim/adversary.hpp): a quarantined relay
  // that captured the source's packet signature re-submits the settled
  // packet with its own price inflated. The altered fingerprint is
  // rejected, the forensic record (settled_prices) still names the
  // genuine price list — that comparison is what convicts the replayer —
  // and the source's sequence numbering is not poisoned: the next fresh
  // seq settles normally and a genuine retransmit still no-op-acks.
  Ledger ledger(5, 9);
  ledger.fund_all(50.0);
  const Signature sig = sign(ledger.key_of(3), packet_payload(4, 3, 0));
  ASSERT_TRUE(
      ledger.settle_upstream(4, 3, 0, sig, {{1, 2.0}, {2, 3.0}}).accepted);

  // Relay 2, now quarantined, front-runs a copy billing itself 4x.
  const auto hijack =
      ledger.settle_upstream(4, 3, 0, sig, {{1, 2.0}, {2, 12.0}});
  EXPECT_FALSE(hijack.accepted);
  EXPECT_EQ(hijack.reject_reason, "replayed packet");
  EXPECT_DOUBLE_EQ(ledger.balance(2), 53.0);  // the inflation never landed

  // Forensics: the record of what actually got paid is intact.
  const auto prices = ledger.settled_prices(4, 0);
  ASSERT_EQ(prices.size(), 2u);
  EXPECT_EQ(prices[0], (std::pair<graph::NodeId, graph::Cost>{1, 2.0}));
  EXPECT_EQ(prices[1], (std::pair<graph::NodeId, graph::Cost>{2, 3.0}));
  EXPECT_TRUE(ledger.settled_prices(4, 99).empty());  // never settled

  // The attack burned nothing: seq 1 is fresh, and the genuine seq-0
  // content still acknowledges as a duplicate, not a rejection.
  const Signature next = sign(ledger.key_of(3), packet_payload(4, 3, 1));
  EXPECT_TRUE(
      ledger.settle_upstream(4, 3, 1, next, {{1, 2.0}, {2, 3.0}}).accepted);
  const auto retransmit =
      ledger.settle_upstream(4, 3, 0, sig, {{1, 2.0}, {2, 3.0}});
  EXPECT_TRUE(retransmit.accepted);
  EXPECT_TRUE(retransmit.duplicate);
}

TEST(Ledger, RejectedSettlementDoesNotBurnTheSequenceNumber) {
  // A rejection must leave no replay record behind: after a stale-epoch
  // refusal the same (session, seq) settles cleanly once re-quoted at
  // the current epoch. (The epoch fence runs before the replay check
  // precisely so a rejected settle cannot poison its own retry.)
  Ledger ledger(4, 11);
  ledger.fund_all(20.0);
  ledger.set_profile_epoch(5);
  const Signature sig = sign(ledger.key_of(2), packet_payload(1, 2, 0));
  const auto stale =
      ledger.settle_upstream(1, 2, 0, sig, {{1, 1.5}}, /*quote_epoch=*/3);
  EXPECT_FALSE(stale.accepted);
  EXPECT_EQ(stale.reject_reason, "stale quote epoch");
  EXPECT_TRUE(ledger.settled_prices(1, 0).empty());

  const auto retry =
      ledger.settle_upstream(1, 2, 0, sig, {{1, 1.5}}, /*quote_epoch=*/5);
  EXPECT_TRUE(retry.accepted);
  EXPECT_FALSE(retry.duplicate);
  EXPECT_DOUBLE_EQ(ledger.balance(1), 21.5);
  EXPECT_EQ(ledger.settlements(), 1u);
  EXPECT_EQ(ledger.rejections(), 1u);
}

TEST(Ledger, DownstreamNeedsAllAcks) {
  Ledger ledger(5, 4);
  ledger.fund_all(20.0);
  const Signature good = sign(ledger.key_of(1), packet_payload(2, 1, 0));
  const Signature bad = sign(ledger.key_of(3), packet_payload(2, 1, 0));
  // Relay 2's ack is forged (free-riding attempt): whole settlement fails.
  const auto result =
      ledger.settle_downstream(2, 4, 0, {{1, 3.0, good}, {2, 2.0, bad}});
  EXPECT_FALSE(result.accepted);
  EXPECT_DOUBLE_EQ(ledger.balance(1), 20.0);
  EXPECT_DOUBLE_EQ(ledger.balance(4), 20.0);
}

TEST(Ledger, DownstreamSettlesWithValidAcks) {
  Ledger ledger(5, 4);
  ledger.fund_all(20.0);
  const Signature a1 = sign(ledger.key_of(1), packet_payload(2, 1, 0));
  const Signature a2 = sign(ledger.key_of(2), packet_payload(2, 2, 0));
  const auto result =
      ledger.settle_downstream(2, 4, 0, {{1, 3.0, a1}, {2, 2.0, a2}});
  ASSERT_TRUE(result.accepted);
  EXPECT_DOUBLE_EQ(ledger.balance(4), 15.0);
  EXPECT_DOUBLE_EQ(ledger.balance(1), 23.0);
  EXPECT_DOUBLE_EQ(ledger.balance(2), 22.0);
}

TEST(Ledger, DownstreamRetransmitNoOpAckButAlteredReplayRejected) {
  Ledger ledger(3, 5);
  ledger.fund_all(20.0);
  const Signature a1 = sign(ledger.key_of(1), packet_payload(2, 1, 0));
  EXPECT_TRUE(ledger.settle_downstream(2, 2, 0, {{1, 3.0, a1}}).accepted);
  // Identical retransmission: idempotent no-op ack.
  const auto retransmit = ledger.settle_downstream(2, 2, 0, {{1, 3.0, a1}});
  EXPECT_TRUE(retransmit.accepted);
  EXPECT_TRUE(retransmit.duplicate);
  EXPECT_DOUBLE_EQ(ledger.balance(1), 23.0);  // paid once
  EXPECT_EQ(ledger.duplicate_acks(), 1u);
  // Altered price under the same packet id: replay attack, refused.
  const auto replay = ledger.settle_downstream(2, 2, 0, {{1, 4.0, a1}});
  EXPECT_FALSE(replay.accepted);
  EXPECT_EQ(replay.reject_reason, "replayed packet");
  EXPECT_DOUBLE_EQ(ledger.balance(1), 23.0);
}

TEST(Ledger, UpstreamAndDownstreamSequencesIndependent) {
  // The same (session, seq) can settle once upstream and once downstream.
  Ledger ledger(3, 6);
  ledger.fund_all(20.0);
  const Signature up = sign(ledger.key_of(1), packet_payload(4, 1, 0));
  const Signature ack = sign(ledger.key_of(2), packet_payload(4, 2, 0));
  EXPECT_TRUE(ledger.settle_upstream(4, 1, 0, up, {{2, 1.0}}).accepted);
  EXPECT_TRUE(ledger.settle_downstream(4, 1, 0, {{2, 1.0, ack}}).accepted);
}

TEST(Ledger, StaleEpochUpstreamRejected) {
  Ledger ledger(5, 8);
  ledger.fund_all(50.0);
  ledger.set_profile_epoch(3);
  const Signature sig = sign(ledger.key_of(2), packet_payload(1, 2, 0));
  // Quote priced under epoch 2; the profile has moved on to epoch 3.
  const auto stale = ledger.settle_upstream(1, 2, 0, sig, {{1, 2.0}}, 2);
  EXPECT_FALSE(stale.accepted);
  EXPECT_EQ(stale.reject_reason, "stale quote epoch");
  EXPECT_DOUBLE_EQ(ledger.balance(2), 50.0);
  EXPECT_EQ(ledger.rejections(), 1u);
  // The rejection must not burn the sequence number: re-quoting at the
  // current epoch settles the same packet.
  const auto fresh = ledger.settle_upstream(1, 2, 0, sig, {{1, 2.0}}, 3);
  EXPECT_TRUE(fresh.accepted);
  EXPECT_DOUBLE_EQ(ledger.balance(2), 48.0);
}

TEST(Ledger, StaleEpochDownstreamRejected) {
  Ledger ledger(4, 9);
  ledger.fund_all(30.0);
  ledger.set_profile_epoch(5);
  const Signature ack = sign(ledger.key_of(2), packet_payload(6, 2, 1));
  const auto stale = ledger.settle_downstream(6, 1, 1, {{2, 1.5, ack}}, 4);
  EXPECT_FALSE(stale.accepted);
  EXPECT_EQ(stale.reject_reason, "stale quote epoch");
  const auto fresh = ledger.settle_downstream(6, 1, 1, {{2, 1.5, ack}}, 5);
  EXPECT_TRUE(fresh.accepted);
}

TEST(Ledger, LegacyOverloadsAssumeCurrentEpoch) {
  Ledger ledger(4, 10);
  ledger.fund_all(30.0);
  ledger.set_profile_epoch(7);
  const Signature sig = sign(ledger.key_of(1), packet_payload(2, 1, 0));
  // The epoch-less overloads settle at whatever epoch is current.
  EXPECT_TRUE(ledger.settle_upstream(2, 1, 0, sig, {{2, 1.0}}).accepted);
}

TEST(Ledger, SettleQuoteUsesStampedEpochAndPathPayments) {
  Ledger ledger(4, 11);
  ledger.fund_all(40.0);
  ledger.set_profile_epoch(2);
  core::PaymentResult quote;
  quote.path = {3, 2, 1, 0};
  quote.path_cost = 5.0;
  quote.payments.assign(4, 0.0);
  quote.payments[1] = 3.0;
  quote.payments[2] = 4.0;
  quote.profile_version = 1;  // stale: profile has moved to epoch 2
  const Signature sig = sign(ledger.key_of(3), packet_payload(8, 3, 0));
  const auto stale = ledger.settle_quote(8, 0, sig, quote);
  EXPECT_FALSE(stale.accepted);
  EXPECT_EQ(stale.reject_reason, "stale quote epoch");
  quote.profile_version = 2;
  const auto fresh = ledger.settle_quote(8, 0, sig, quote);
  ASSERT_TRUE(fresh.accepted);
  EXPECT_DOUBLE_EQ(fresh.charged, 7.0);
  EXPECT_DOUBLE_EQ(ledger.balance(3), 33.0);
  EXPECT_DOUBLE_EQ(ledger.balance(2), 44.0);
  EXPECT_DOUBLE_EQ(ledger.balance(1), 43.0);
  EXPECT_DOUBLE_EQ(ledger.balance(0), 40.0);  // endpoints are not paid
}

TEST(Ledger, SettleQuoteRejectsUnroutableAndMonopolyQuotes) {
  Ledger ledger(3, 12);
  ledger.fund_all(10.0);
  const Signature sig = sign(ledger.key_of(2), packet_payload(1, 2, 0));
  core::PaymentResult unroutable;
  unroutable.payments.assign(3, 0.0);
  EXPECT_EQ(ledger.settle_quote(1, 0, sig, unroutable).reject_reason,
            "quote is not routable");
  core::PaymentResult monopoly;
  monopoly.path = {2, 1, 0};
  monopoly.path_cost = 2.0;
  monopoly.payments.assign(3, 0.0);
  monopoly.payments[1] = graph::kInfCost;
  EXPECT_EQ(ledger.settle_quote(1, 0, sig, monopoly).reject_reason,
            "unbounded monopoly payment");
}

TEST(Ledger, BalancesConserveTotal) {
  Ledger ledger(6, 7);
  ledger.fund_all(100.0);
  const Signature sig = sign(ledger.key_of(5), packet_payload(9, 5, 1));
  ASSERT_TRUE(
      ledger.settle_upstream(9, 5, 1, sig, {{1, 7.0}, {2, 3.5}, {3, 0.5}})
          .accepted);
  double total = 0.0;
  for (graph::NodeId v = 0; v < 6; ++v) total += ledger.balance(v);
  EXPECT_DOUBLE_EQ(total, 600.0);  // payments are transfers, not creation
}

}  // namespace
}  // namespace tc::distsim
