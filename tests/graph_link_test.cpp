#include "graph/link_graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tc::graph {
namespace {

LinkGraph diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3 with asymmetric back edges.
  LinkGraphBuilder b(4);
  b.add_arc(0, 1, 1.0).add_arc(1, 3, 2.0);
  b.add_arc(0, 2, 1.5).add_arc(2, 3, 1.0);
  b.add_arc(3, 0, 10.0);
  return b.build();
}

TEST(LinkGraph, CountsAndDegrees) {
  const LinkGraph g = diamond();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_arcs(), 5u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(3), 1u);
  EXPECT_EQ(g.out_degree(1), 1u);
}

TEST(LinkGraph, ArcCostLookup) {
  const LinkGraph g = diamond();
  EXPECT_DOUBLE_EQ(g.arc_cost(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.arc_cost(2, 3), 1.0);
  EXPECT_TRUE(std::isinf(g.arc_cost(1, 0)));  // directed: no reverse arc
}

TEST(LinkGraph, SetArcCost) {
  LinkGraph g = diamond();
  g.set_arc_cost(0, 1, 5.5);
  EXPECT_DOUBLE_EQ(g.arc_cost(0, 1), 5.5);
}

TEST(LinkGraph, SetArcCostMissingThrows) {
  LinkGraph g = diamond();
  EXPECT_THROW(g.set_arc_cost(1, 2, 1.0), std::invalid_argument);
}

TEST(LinkGraph, SetAllOutCostsModelsRemoval) {
  LinkGraph g = diamond();
  g.set_all_out_costs(1, kInfCost);
  EXPECT_TRUE(std::isinf(g.arc_cost(1, 3)));
  EXPECT_DOUBLE_EQ(g.arc_cost(0, 1), 1.0);  // inbound arcs untouched
}

TEST(LinkGraph, SnapshotRestore) {
  LinkGraph g = diamond();
  const auto snapshot = g.arc_costs();
  g.set_all_out_costs(0, 99.0);
  EXPECT_DOUBLE_EQ(g.arc_cost(0, 1), 99.0);
  g.restore_arc_costs(snapshot);
  EXPECT_DOUBLE_EQ(g.arc_cost(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.arc_cost(0, 2), 1.5);
}

TEST(LinkGraph, ParallelArcsKeepCheapest) {
  LinkGraphBuilder b(2);
  b.add_arc(0, 1, 5.0).add_arc(0, 1, 2.0).add_arc(0, 1, 8.0);
  const LinkGraph g = b.build();
  EXPECT_EQ(g.num_arcs(), 1u);
  EXPECT_DOUBLE_EQ(g.arc_cost(0, 1), 2.0);
}

TEST(LinkGraph, AddLinkBothDirections) {
  LinkGraphBuilder b(2);
  b.add_link(0, 1, 3.0, 4.0);
  const LinkGraph g = b.build();
  EXPECT_DOUBLE_EQ(g.arc_cost(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(g.arc_cost(1, 0), 4.0);
}

TEST(LinkGraphBuilder, Rejections) {
  LinkGraphBuilder b(2);
  EXPECT_THROW(b.add_arc(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(b.add_arc(0, 9, 1.0), std::invalid_argument);
  EXPECT_THROW(b.add_arc(0, 1, -2.0), std::invalid_argument);
}

TEST(LinkGraph, OutArcsSortedByTarget) {
  LinkGraphBuilder b(4);
  b.add_arc(0, 3, 1.0).add_arc(0, 1, 1.0).add_arc(0, 2, 1.0);
  const LinkGraph g = b.build();
  const auto arcs = g.out_arcs(0);
  ASSERT_EQ(arcs.size(), 3u);
  EXPECT_EQ(arcs[0].to, 1u);
  EXPECT_EQ(arcs[1].to, 2u);
  EXPECT_EQ(arcs[2].to, 3u);
}

TEST(LinkGraphReverse, ArcsAreReversed) {
  const LinkGraph g = diamond();
  const LinkGraph& rev = g.reverse();
  ASSERT_EQ(rev.num_nodes(), g.num_nodes());
  EXPECT_EQ(rev.num_arcs(), g.num_arcs());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Arc& a : g.out_arcs(u)) {
      EXPECT_DOUBLE_EQ(rev.arc_cost(a.to, u), a.cost);
    }
  }
}

TEST(LinkGraphReverse, SecondCallReusesCachedInstance) {
  const LinkGraph g = diamond();
  const LinkGraph* first = &g.reverse();
  EXPECT_EQ(first, &g.reverse());
}

TEST(LinkGraphReverse, MutationInvalidatesCache) {
  LinkGraph g = diamond();
  EXPECT_DOUBLE_EQ(g.reverse().arc_cost(1, 0), 1.0);
  g.set_arc_cost(0, 1, 7.0);
  // A stale cache would still return 1.0 here.
  EXPECT_DOUBLE_EQ(g.reverse().arc_cost(1, 0), 7.0);
  g.set_all_out_costs(0, 2.5);
  EXPECT_DOUBLE_EQ(g.reverse().arc_cost(1, 0), 2.5);
  EXPECT_DOUBLE_EQ(g.reverse().arc_cost(2, 0), 2.5);
}

TEST(LinkGraphReverse, CopySharesCacheUntilMutation) {
  LinkGraph g = diamond();
  const LinkGraph* cached = &g.reverse();
  LinkGraph copy = g;  // same costs: sharing the snapshot is safe
  EXPECT_EQ(&copy.reverse(), cached);
  copy.set_arc_cost(0, 1, 9.0);
  EXPECT_NE(&copy.reverse(), cached);
  EXPECT_EQ(&g.reverse(), cached);  // original cache untouched
  EXPECT_DOUBLE_EQ(g.reverse().arc_cost(1, 0), 1.0);
}

TEST(LinkGraphReverse, RestoreArcCostsInvalidates) {
  LinkGraph g = diamond();
  const std::vector<Cost> snapshot = g.arc_costs();
  g.set_arc_cost(0, 1, 99.0);
  EXPECT_DOUBLE_EQ(g.reverse().arc_cost(1, 0), 99.0);
  g.restore_arc_costs(snapshot);
  EXPECT_DOUBLE_EQ(g.reverse().arc_cost(1, 0), 1.0);
}

}  // namespace
}  // namespace tc::graph
