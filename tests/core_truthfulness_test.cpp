// Empirical strategyproofness (IC) and individual rationality (IR) of the
// VCG unicast mechanism — the paper's central claim (Section III.A).
#include <gtest/gtest.h>

#include "core/neighbor_collusion.hpp"
#include "core/vcg_unicast.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "mech/truthfulness.hpp"
#include "spath/dijkstra.hpp"
#include "util/rng.hpp"

namespace tc::core {
namespace {

using graph::NodeId;

TEST(Truthfulness, VcgOnFig2) {
  const auto g = graph::make_fig2_graph();
  VcgUnicastMechanism mech;
  util::Rng rng(1);
  const auto report =
      mech::check_truthfulness(mech, g, 1, 0, g.costs(), rng);
  EXPECT_TRUE(report.ok()) << (report.ic_violations.empty()
                                   ? ""
                                   : report.ic_violations[0].to_string());
  EXPECT_GT(report.deviations_tried, 20u);
}

TEST(Truthfulness, VcgOnFig4) {
  const auto g = graph::make_fig4_graph();
  VcgUnicastMechanism mech;
  util::Rng rng(2);
  EXPECT_TRUE(mech::check_truthfulness(mech, g, 8, 0, g.costs(), rng).ok());
}

TEST(Truthfulness, VcgOnRandomBiconnectedGraphs) {
  VcgUnicastMechanism mech;
  int tested = 0;
  for (std::uint64_t seed = 1; seed <= 40 && tested < 12; ++seed) {
    const auto g = graph::make_erdos_renyi(16, 0.3, 0.5, 6.0, seed);
    if (!graph::is_biconnected(g)) continue;
    util::Rng rng(seed);
    const auto report =
        mech::check_truthfulness(mech, g, 3, 0, g.costs(), rng);
    EXPECT_TRUE(report.ok()) << "seed " << seed
                             << (report.ic_violations.empty()
                                     ? ""
                                     : " " + report.ic_violations[0].to_string());
    ++tested;
  }
  EXPECT_GE(tested, 8);
}

TEST(Truthfulness, VcgBothEnginesAgreeOnVerdict) {
  const auto g = graph::make_ring(8, 2.0);
  util::Rng rng1(3), rng2(3);
  VcgUnicastMechanism fast(PaymentEngine::kFast);
  VcgUnicastMechanism naive(PaymentEngine::kNaive);
  EXPECT_TRUE(mech::check_truthfulness(fast, g, 0, 4, g.costs(), rng1).ok());
  EXPECT_TRUE(mech::check_truthfulness(naive, g, 0, 4, g.costs(), rng2).ok());
}

TEST(Truthfulness, NeighborResistantSchemeAlsoTruthful) {
  // p~ is itself a Groves scheme, hence individually strategyproof.
  NeighborResistantMechanism mech;
  int tested = 0;
  for (std::uint64_t seed = 1; seed <= 60 && tested < 8; ++seed) {
    const auto g = graph::make_erdos_renyi(14, 0.45, 0.5, 6.0, seed);
    if (!graph::is_biconnected(g)) continue;
    util::Rng rng(seed);
    const auto report =
        mech::check_truthfulness(mech, g, 2, 0, g.costs(), rng);
    EXPECT_TRUE(report.ic_violations.empty()) << "seed " << seed;
    ++tested;
  }
  EXPECT_GE(tested, 5);
}

// A deliberately broken mechanism: pays each relay exactly its declared
// cost. Relays then have the incentive to over-declare; the harness must
// catch this (sanity check that the checker has teeth).
class FixedPriceMechanism final : public mech::UnicastMechanism {
 public:
  mech::UnicastOutcome run(const graph::NodeGraph& g, NodeId source,
                           NodeId target,
                           const std::vector<graph::Cost>& declared)
      const override {
    graph::NodeGraph work = g;
    work.set_costs(declared);
    const auto spt = spath::dijkstra_node(work, source);
    mech::UnicastOutcome out;
    out.payments.assign(g.num_nodes(), 0.0);
    if (!spt.reached(target)) return out;
    out.path = spt.path_to(target);
    out.path_cost = spt.dist[target];
    for (std::size_t i = 1; i + 1 < out.path.size(); ++i)
      out.payments[out.path[i]] = declared[out.path[i]];
    return out;
  }
  std::string name() const override { return "fixed-price"; }
};

TEST(Truthfulness, HarnessCatchesUntruthfulMechanism) {
  // Asymmetric cycle: the cheap-side relays have slack (the dear side
  // costs 8), so under fixed-price payments they profit by over-declaring
  // — the harness must detect that.
  graph::NodeGraphBuilder b(6);
  b.set_node_cost(1, 1.0).set_node_cost(2, 1.0);
  b.set_node_cost(4, 4.0).set_node_cost(5, 4.0);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3);
  b.add_edge(0, 5).add_edge(5, 4).add_edge(4, 3);
  const auto g = b.build();
  FixedPriceMechanism mech;
  util::Rng rng(11);
  const auto report = mech::check_truthfulness(mech, g, 0, 3, g.costs(), rng);
  EXPECT_FALSE(report.ic_violations.empty());
}

TEST(Truthfulness, IrHoldsUnderTruth) {
  // Relays paid >= cost, off-path paid 0: utility never negative.
  VcgUnicastMechanism mech;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto g = graph::make_erdos_renyi(20, 0.25, 1.0, 5.0, seed);
    const auto out = mech.run(g, 1, 0, g.costs());
    if (!out.connected()) continue;
    for (NodeId k = 0; k < g.num_nodes(); ++k) {
      if (k == 1 || k == 0) continue;
      EXPECT_GE(mech::agent_utility(out, k, g.node_cost(k)), -1e-9);
    }
  }
}

TEST(Truthfulness, ThresholdProbesIncluded) {
  // probe_thresholds should add deviations right at the payment boundary.
  const auto g = graph::make_ring(8, 2.0);
  VcgUnicastMechanism mech;
  util::Rng rng1(5), rng2(5);
  mech::TruthfulnessOptions with, without;
  without.probe_thresholds = false;
  const auto r1 = mech::check_truthfulness(mech, g, 0, 4, g.costs(), rng1, with);
  const auto r2 =
      mech::check_truthfulness(mech, g, 0, 4, g.costs(), rng2, without);
  EXPECT_GT(r1.deviations_tried, r2.deviations_tried);
  EXPECT_TRUE(r1.ok());
}

}  // namespace
}  // namespace tc::core
