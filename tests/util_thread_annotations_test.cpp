// Runtime behavior of the annotated mutex wrappers (thread_annotations.hpp).
// The *static* side — Clang Thread Safety Analysis rejecting misuse — is
// exercised by tests/negative/ via tools/negative_compile_test.py; here we
// pin down that the wrappers actually lock, exclude, share, and wake.

#include "util/thread_annotations.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace tc::util {
namespace {

TEST(ThreadAnnotationsTest, MutexProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(ThreadAnnotationsTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.lock();
  bool acquired = true;
  std::thread other([&] { acquired = mu.try_lock(); });
  other.join();
  EXPECT_FALSE(acquired);
  mu.unlock();
  std::thread again([&] {
    acquired = mu.try_lock();
    if (acquired) mu.unlock();
  });
  again.join();
  EXPECT_TRUE(acquired);
}

TEST(ThreadAnnotationsTest, SharedMutexAdmitsConcurrentReaders) {
  SharedMutex mu;
  std::atomic<int> readers_inside{0};
  std::atomic<int> max_readers{0};
  std::atomic<bool> go{false};
  constexpr int kReaders = 4;
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      SharedReaderLock lock(mu);
      const int inside = readers_inside.fetch_add(1) + 1;
      int seen = max_readers.load();
      while (inside > seen && !max_readers.compare_exchange_weak(seen, inside)) {
      }
      // Linger so the readers overlap deterministically enough to observe.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      readers_inside.fetch_sub(1);
    });
  }
  go.store(true);
  for (auto& t : threads) t.join();
  EXPECT_GE(max_readers.load(), 2) << "shared locks never overlapped";
}

TEST(ThreadAnnotationsTest, SharedMutexWriterExcludesReaders) {
  SharedMutex mu;
  int value = 0;
  std::atomic<bool> writer_in{false};
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    SharedMutexLock lock(mu);
    writer_in.store(true);
    value = 42;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    writer_done.store(true);
  });
  // Wait until the writer provably holds the exclusive lock, so our
  // shared acquisition below must block behind it.
  while (!writer_in.load()) std::this_thread::yield();
  {
    SharedReaderLock lock(mu);
    // If we got the shared lock the exclusive section must be over.
    EXPECT_TRUE(writer_done.load());
    EXPECT_EQ(value, 42);
  }
  writer.join();
}

TEST(ThreadAnnotationsTest, CondVarWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    observed = 1;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

}  // namespace
}  // namespace tc::util
