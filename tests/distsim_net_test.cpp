// Unit tests for the fault-injected radio substrate (net::RadioNet) and
// the reliable-delivery layer on top of it (net::ReliableNet).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "distsim/net/radio.hpp"
#include "distsim/net/reliable.hpp"
#include "graph/generators.hpp"

namespace tc::distsim::net {
namespace {

using graph::NodeId;

// Drives `netw` until it is idle (or the round cap trips), collecting
// every delivery per node. The sender hook runs once before the first
// round advances.
template <typename Net, typename Packet>
std::vector<std::vector<Packet>> drain(Net& netw, std::size_t max_rounds) {
  const std::size_t n = netw.topology().num_nodes();
  std::vector<std::vector<Packet>> got(n);
  for (std::size_t r = 0; r < max_rounds && !netw.idle(); ++r) {
    netw.advance_round();
    netw.deliver();
    for (NodeId v = 0; v < n; ++v)
      for (auto& p : netw.collect(v)) got[v].push_back(std::move(p));
  }
  return got;
}

TEST(RadioNet, FaultFreeDeliversEveryCopySameRound) {
  const auto g = graph::make_ring(5);
  RadioNet radio(g, FaultSchedule{});
  radio.advance_round();
  radio.send(0, 1, {42});
  radio.send(1, 2, {43});
  radio.deliver();
  const auto at1 = radio.collect(1);
  const auto at2 = radio.collect(2);
  ASSERT_EQ(at1.size(), 1u);
  EXPECT_EQ(at1[0].src, 0u);
  EXPECT_EQ(at1[0].words, (std::vector<std::uint64_t>{42}));
  ASSERT_EQ(at2.size(), 1u);
  EXPECT_TRUE(radio.idle());
  EXPECT_EQ(radio.stats().copies_sent, 2u);
  EXPECT_EQ(radio.stats().copies_delivered, 2u);
  EXPECT_EQ(radio.stats().copies_dropped, 0u);
}

TEST(RadioNet, CertainDropLosesEveryCopy) {
  const auto g = graph::make_path(3);
  FaultSchedule s = FaultSchedule::uniform_loss(1.0, 7);
  RadioNet radio(g, s);
  for (int r = 0; r < 4; ++r) {
    radio.advance_round();
    radio.send(0, 1, {1});
    radio.deliver();
    EXPECT_TRUE(radio.collect(1).empty());
  }
  EXPECT_EQ(radio.stats().copies_dropped, 4u);
  EXPECT_EQ(radio.stats().copies_delivered, 0u);
  EXPECT_TRUE(radio.idle());
}

TEST(RadioNet, LinkOverrideBeatsDefaultModel) {
  const auto g = graph::make_path(3);
  FaultSchedule s;
  s.link.drop = 0.0;
  LinkFaultModel dead;
  dead.drop = 1.0;
  s.link_overrides.emplace_back(0, 1, dead);
  RadioNet radio(g, s);
  radio.advance_round();
  radio.send(0, 1, {1});  // overridden link: always lost
  radio.send(1, 2, {2});  // default link: always delivered
  radio.deliver();
  EXPECT_TRUE(radio.collect(1).empty());
  EXPECT_EQ(radio.collect(2).size(), 1u);
}

TEST(RadioNet, CrashedNodeNeitherSendsNorReceives) {
  const auto g = graph::make_path(3);
  FaultSchedule s;
  s.crashes.push_back({1, /*crash_round=*/2, /*recover_round=*/4});
  RadioNet radio(g, s);

  radio.advance_round();  // round 1: node 1 still up
  EXPECT_TRUE(radio.node_up(1));
  radio.send(0, 1, {10});
  radio.deliver();
  EXPECT_EQ(radio.collect(1).size(), 1u);

  radio.advance_round();  // round 2: crash takes effect
  EXPECT_FALSE(radio.node_up(1));
  EXPECT_TRUE(radio.crashed_this_round(1));
  radio.send(0, 1, {11});  // dropped at delivery: receiver is down
  radio.send(1, 2, {12});  // ignored: sender is down
  radio.deliver();
  EXPECT_TRUE(radio.collect(1).empty());
  EXPECT_TRUE(radio.collect(2).empty());
  EXPECT_EQ(radio.stats().drops_to_down, 1u);

  radio.advance_round();  // round 3: still down
  radio.advance_round();  // round 4: recovery
  EXPECT_TRUE(radio.node_up(1));
  EXPECT_TRUE(radio.recovered_this_round(1));
  radio.send(0, 1, {13});
  radio.deliver();
  ASSERT_EQ(radio.collect(1).size(), 1u);
}

TEST(RadioNet, PartitionWindowCutsCrossIslandTrafficThenHeals) {
  const auto g = graph::make_complete(4);
  FaultSchedule s;
  s.partitions.push_back({{0, 1}, /*start_round=*/1, /*end_round=*/3});
  RadioNet radio(g, s);

  radio.advance_round();  // round 1: partition active
  EXPECT_TRUE(radio.reachable(0, 1));
  EXPECT_FALSE(radio.reachable(0, 2));
  radio.send(0, 1, {1});  // same island: delivered
  radio.send(0, 2, {2});  // cross island: dropped
  radio.send(2, 3, {3});  // both outside: delivered
  radio.deliver();
  EXPECT_EQ(radio.collect(1).size(), 1u);
  EXPECT_TRUE(radio.collect(2).empty());
  EXPECT_EQ(radio.collect(3).size(), 1u);

  radio.advance_round();  // round 2: still active
  radio.advance_round();  // round 3: healed
  EXPECT_TRUE(radio.reachable(0, 2));
  radio.send(0, 2, {4});
  radio.deliver();
  EXPECT_EQ(radio.collect(2).size(), 1u);
}

TEST(RadioNet, DeterministicBySeed) {
  const auto g = graph::make_erdos_renyi(10, 0.5, 1.0, 4.0, 3);
  FaultSchedule s;
  s.link.drop = 0.3;
  s.link.duplicate = 0.2;
  s.link.reorder = 0.2;
  s.seed = 99;
  auto trace = [&](RadioNet& radio) {
    std::vector<std::vector<std::uint64_t>> log;
    for (std::size_t r = 1; r <= 12; ++r) {
      radio.advance_round();
      for (NodeId v = 0; v < g.num_nodes(); ++v)
        for (const NodeId u : g.neighbors(v)) radio.send(v, u, {r, v});
      radio.deliver();
      for (NodeId v = 0; v < g.num_nodes(); ++v)
        for (const auto& p : radio.collect(v))
          log.push_back({p.src, p.dst, p.words[0], p.words[1]});
    }
    return log;
  };
  RadioNet a(g, s), b(g, s);
  EXPECT_EQ(trace(a), trace(b));
  s.seed = 100;
  RadioNet c(g, s);
  EXPECT_NE(trace(a), trace(c));
}

TEST(ReliableNet, FaultFreeExactlyOnceInOrder) {
  const auto g = graph::make_path(2);
  ReliableNet netw(g, FaultSchedule{});
  netw.advance_round();
  for (std::uint64_t i = 0; i < 5; ++i) netw.send(0, 1, {i});
  netw.deliver();
  const auto got = netw.collect(1);
  ASSERT_EQ(got.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(got[i].words[0], i);
  // Acks drain in the next cycle; then everything is quiescent.
  netw.advance_round();
  netw.deliver();
  EXPECT_TRUE(netw.collect(0).empty());  // acks are not deliveries
  EXPECT_TRUE(netw.idle());
  const auto st = netw.stats();
  EXPECT_EQ(st.channel.data_sent, 5u);
  EXPECT_EQ(st.channel.retransmissions, 0u);
  EXPECT_EQ(st.channel.duplicates_discarded, 0u);
}

TEST(ReliableNet, RetransmitsThroughHeavyLossUntilDelivered) {
  const auto g = graph::make_path(2);
  ReliableNet netw(g, FaultSchedule::uniform_loss(0.5, 11));
  netw.advance_round();
  for (std::uint64_t i = 0; i < 20; ++i) netw.send(0, 1, {i});
  const auto got = drain<ReliableNet, Delivery>(netw, 600);
  ASSERT_EQ(got[1].size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i)
    EXPECT_EQ(got[1][i].words[0], i) << "delivery order broken at " << i;
  EXPECT_GT(netw.stats().channel.retransmissions, 0u);
  EXPECT_EQ(netw.stats().channel.give_ups, 0u);
  EXPECT_FALSE(netw.peer_timed_out(0, 1));
}

TEST(ReliableNet, DuplicationIsDiscardedByReceiver) {
  const auto g = graph::make_path(2);
  FaultSchedule s;
  s.link.duplicate = 1.0;  // every copy echoed
  s.seed = 5;
  ReliableNet netw(g, s);
  netw.advance_round();
  for (std::uint64_t i = 0; i < 8; ++i) netw.send(0, 1, {i});
  const auto got = drain<ReliableNet, Delivery>(netw, 60);
  ASSERT_EQ(got[1].size(), 8u);
  EXPECT_GT(netw.stats().channel.duplicates_discarded, 0u);
  EXPECT_GT(netw.stats().radio.copies_duplicated, 0u);
}

TEST(ReliableNet, ReorderedCopiesAreBufferedAndReleasedInOrder) {
  const auto g = graph::make_path(2);
  FaultSchedule s;
  s.link.reorder = 0.8;
  s.link.max_extra_delay = 4;
  s.seed = 21;
  ReliableNet netw(g, s);
  netw.advance_round();
  for (std::uint64_t i = 0; i < 16; ++i) netw.send(0, 1, {i});
  const auto got = drain<ReliableNet, Delivery>(netw, 120);
  ASSERT_EQ(got[1].size(), 16u);
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(got[1][i].words[0], i);
  EXPECT_GT(netw.stats().radio.copies_delayed, 0u);
  EXPECT_GT(netw.stats().channel.out_of_order_buffered, 0u);
}

// A Byzantine relay that captured an old wire copy re-injects it at the
// radio layer. The receiver must dedup-drop it by sequence number: no
// duplicate delivery, no cumulative-ack movement, no crash suspicion.
TEST(ReliableNet, ReplayedStalePacketIsDroppedWithoutAdvancingTheAck) {
  const auto g = graph::make_path(2);
  ReliableNet netw(g, FaultSchedule{});
  netw.advance_round();
  for (std::uint64_t i = 0; i < 3; ++i) netw.send(0, 1, {i});
  netw.deliver();
  ASSERT_EQ(netw.collect(1).size(), 3u);
  netw.advance_round();
  netw.deliver();  // drain the ack cycle
  ASSERT_TRUE(netw.idle());
  const auto before = netw.stats().channel;

  // Replay a captured copy of packet 0: wire format [kData=0, seq, words].
  netw.advance_round();
  netw.radio().send(0, 1, {0, 0, 0});
  netw.deliver();
  EXPECT_TRUE(netw.collect(1).empty()) << "replayed packet was re-delivered";
  EXPECT_EQ(netw.stats().channel.duplicates_discarded,
            before.duplicates_discarded + 1);

  // The channel is unharmed: the next genuine send picks up the next
  // sequence number and delivers exactly once, and nothing ever looked
  // like a crash.
  netw.advance_round();
  netw.deliver();  // drain the re-ack the replay provoked
  netw.advance_round();
  netw.send(0, 1, {77});
  netw.deliver();
  const auto got = netw.collect(1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].words, (std::vector<std::uint64_t>{77}));
  EXPECT_FALSE(netw.peer_timed_out(0, 1));
  EXPECT_EQ(netw.stats().channel.give_ups, 0u);
}

// A forged sequence number far ahead of the window must not advance the
// cumulative ack (acks cover the in-order prefix only), must never be
// delivered in place of genuine traffic, and a second copy of the same
// forgery is dedup-dropped out of the reorder buffer.
TEST(ReliableNet, ForgedFutureSeqDoesNotAdvanceAckOrDeliver) {
  const auto g = graph::make_path(2);
  ReliableNet netw(g, FaultSchedule{});
  netw.advance_round();
  for (std::uint64_t i = 0; i < 2; ++i) netw.send(0, 1, {i});
  netw.deliver();
  ASSERT_EQ(netw.collect(1).size(), 2u);
  netw.advance_round();
  netw.deliver();
  const auto before = netw.stats().channel;

  // Inject a forged data packet claiming seq 40 with a poisoned payload.
  netw.advance_round();
  netw.radio().send(0, 1, {0, 40, 99});
  netw.deliver();
  EXPECT_TRUE(netw.collect(1).empty()) << "forged-seq packet was delivered";
  EXPECT_EQ(netw.stats().channel.out_of_order_buffered,
            before.out_of_order_buffered + 1);

  // Re-injecting the same forgery is a dedup hit, not a second buffer.
  netw.advance_round();
  netw.deliver();
  netw.advance_round();
  netw.radio().send(0, 1, {0, 40, 99});
  netw.deliver();
  EXPECT_TRUE(netw.collect(1).empty());
  EXPECT_EQ(netw.stats().channel.duplicates_discarded,
            before.duplicates_discarded + 1);

  // Genuine traffic continues in order from the true frontier — the
  // cumulative ack never jumped to 41, so the sender's window and the
  // receiver's expectations still agree, and no channel looks dead.
  netw.advance_round();
  netw.deliver();
  netw.advance_round();
  for (std::uint64_t i = 2; i < 5; ++i) netw.send(0, 1, {i});
  netw.deliver();
  const auto got = netw.collect(1);
  ASSERT_EQ(got.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i)
    EXPECT_EQ(got[i].words, (std::vector<std::uint64_t>{i + 2}));
  EXPECT_FALSE(netw.peer_timed_out(0, 1));
  EXPECT_EQ(netw.stats().channel.give_ups, 0u);
}

TEST(ReliableNet, DeadLinkGivesUpAndReportsPeerTimedOut) {
  const auto g = graph::make_path(2);
  FaultSchedule s;
  LinkFaultModel dead;
  dead.drop = 1.0;
  s.link_overrides.emplace_back(0, 1, dead);
  ReliableConfig cfg;
  cfg.rto_base = 1;
  cfg.rto_cap = 2;
  cfg.max_attempts = 3;
  ReliableNet netw(g, s, cfg);
  netw.advance_round();
  netw.send(0, 1, {7});
  for (int r = 0; r < 20; ++r) {
    netw.advance_round();
    netw.deliver();
    (void)netw.collect(1);
  }
  EXPECT_TRUE(netw.peer_timed_out(0, 1));
  EXPECT_EQ(netw.stats().channel.give_ups, 1u);
  // A dead channel never drains, but it must not wedge idle() forever.
  EXPECT_TRUE(netw.idle());
  // Further sends on the dead channel are swallowed, not retried.
  netw.send(0, 1, {8});
  EXPECT_TRUE(netw.idle());
}

TEST(ReliableNet, CrashWipesChannelStateAndRecoveryStartsFresh) {
  const auto g = graph::make_path(2);
  FaultSchedule s;
  s.crashes.push_back({1, /*crash_round=*/2, /*recover_round=*/6});
  ReliableConfig cfg;
  cfg.rto_base = 1;
  cfg.rto_cap = 2;
  cfg.max_attempts = 1;  // give-up lands at round 5, before the recovery
  ReliableNet netw(g, s, cfg);

  netw.advance_round();  // round 1
  netw.send(0, 1, {100});
  netw.deliver();
  ASSERT_EQ(netw.collect(1).size(), 1u);

  // Rounds 2..5: node 1 crashes at 2; a payload sent into the void is
  // retransmitted until the channel 0->1 gives up.
  bool timed_out = false;
  for (std::size_t r = 2; r <= 5; ++r) {
    netw.advance_round();
    if (r == 2) netw.send(0, 1, {101});
    netw.deliver();
    (void)netw.collect(1);
    timed_out = timed_out || netw.peer_timed_out(0, 1);
  }
  EXPECT_TRUE(timed_out);

  // Round 6: recovery resets both directions; the pair talks again from
  // sequence zero (a fresh incarnation) and the timeout flag clears.
  netw.advance_round();
  EXPECT_TRUE(netw.recovered_this_round(1));
  EXPECT_FALSE(netw.peer_timed_out(0, 1));
  netw.send(0, 1, {102});
  netw.deliver();
  const auto got = netw.collect(1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].words[0], 102u);
}

TEST(ReliableNet, BroadcastReachesEveryNeighborExactlyOnce) {
  const auto g = graph::make_complete(5);
  ReliableNet netw(g, FaultSchedule::uniform_loss(0.4, 17));
  netw.advance_round();
  netw.broadcast(2, {55});
  const auto got = drain<ReliableNet, Delivery>(netw, 600);
  for (NodeId v = 0; v < 5; ++v) {
    if (v == 2) {
      EXPECT_TRUE(got[v].empty());
    } else {
      ASSERT_EQ(got[v].size(), 1u) << "neighbor " << v;
      EXPECT_EQ(got[v][0].src, 2u);
      EXPECT_EQ(got[v][0].words[0], 55u);
    }
  }
}

TEST(ReliableNet, DeterministicBySeedUnderCompoundFaults) {
  const auto g = graph::make_grid(3, 3);
  FaultSchedule s;
  s.link.drop = 0.25;
  s.link.duplicate = 0.1;
  s.link.reorder = 0.15;
  s.seed = 4242;
  auto run = [&]() {
    ReliableNet netw(g, s);
    std::vector<std::vector<std::uint64_t>> log;
    netw.advance_round();
    for (NodeId v = 0; v < g.num_nodes(); ++v) netw.broadcast(v, {v, 1});
    for (std::size_t r = 0; r < 200 && !netw.idle(); ++r) {
      netw.advance_round();
      netw.deliver();
      for (NodeId v = 0; v < g.num_nodes(); ++v)
        for (const auto& d : netw.collect(v))
          log.push_back({v, d.src, d.words[0]});
    }
    const auto st = netw.stats();
    log.push_back({st.radio.copies_dropped, st.channel.retransmissions,
                   st.channel.duplicates_discarded});
    return log;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace tc::distsim::net
