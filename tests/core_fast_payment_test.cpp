// Differential tests: Algorithm 1 (fast payments) must agree exactly with
// the per-relay-Dijkstra reference on every instance.
#include "core/fast_payment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/vcg_unicast.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace tc::core {
namespace {

using graph::NodeId;

void expect_same_payments(const PaymentResult& naive, const PaymentResult& fast,
                          const std::string& context) {
  ASSERT_EQ(naive.path, fast.path) << context;
  ASSERT_EQ(naive.payments.size(), fast.payments.size()) << context;
  for (std::size_t k = 0; k < naive.payments.size(); ++k) {
    const double a = naive.payments[k];
    const double b = fast.payments[k];
    if (std::isinf(a) || std::isinf(b)) {
      EXPECT_EQ(std::isinf(a), std::isinf(b)) << context << " node " << k;
    } else {
      EXPECT_NEAR(a, b, 1e-9) << context << " node " << k;
    }
  }
}

TEST(FastPayment, Fig2Exact) {
  const auto g = graph::make_fig2_graph();
  const PaymentResult r = vcg_payments_fast(g, 1, 0);
  EXPECT_DOUBLE_EQ(r.payments[2], 2.0);
  EXPECT_DOUBLE_EQ(r.payments[3], 2.0);
  EXPECT_DOUBLE_EQ(r.payments[4], 2.0);
  EXPECT_DOUBLE_EQ(r.total_payment(), 6.0);
}

TEST(FastPayment, Fig4Exact) {
  const auto g = graph::make_fig4_graph();
  const PaymentResult r = vcg_payments_fast(g, 8, 0);
  EXPECT_DOUBLE_EQ(r.total_payment(), 20.0);  // p_8 = 20 as in the paper
}

TEST(FastPayment, NoRelaysTrivial) {
  graph::NodeGraphBuilder b(3);
  b.add_edge(0, 2).add_edge(0, 1).add_edge(1, 2);
  const PaymentResult r = vcg_payments_fast(b.build(), 0, 2);
  EXPECT_EQ(r.path.size(), 2u);
  EXPECT_DOUBLE_EQ(r.total_payment(), 0.0);
}

TEST(FastPayment, DisconnectedNoOutput) {
  graph::NodeGraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  const PaymentResult r = vcg_payments_fast(b.build(), 0, 3);
  EXPECT_FALSE(r.connected());
}

TEST(FastPayment, MonopolyIsInfinite) {
  const auto g = graph::make_path(5, 1.0);
  const PaymentResult r = vcg_payments_fast(g, 0, 4);
  for (NodeId k = 1; k <= 3; ++k) EXPECT_TRUE(std::isinf(r.payments[k]));
}

TEST(FastPayment, DifferentialErdosRenyi) {
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    const auto g = graph::make_erdos_renyi(28, 0.18, 0.2, 8.0, seed);
    util::Rng rng(seed * 3 + 1);
    for (int trial = 0; trial < 4; ++trial) {
      const auto s = static_cast<NodeId>(rng.next_below(28));
      const auto t = static_cast<NodeId>(rng.next_below(28));
      if (s == t) continue;
      const auto naive = vcg_payments_naive(g, s, t);
      const auto fast = vcg_payments_fast(g, s, t);
      expect_same_payments(naive, fast,
                           "seed " + std::to_string(seed) + " s=" +
                               std::to_string(s) + " t=" + std::to_string(t));
      ++checked;
    }
  }
  EXPECT_GT(checked, 300);
}

TEST(FastPayment, DifferentialUnitDisk) {
  graph::UdgParams params;
  params.n = 120;
  params.region = {1000.0, 1000.0};
  params.range_m = 220.0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto g = graph::make_unit_disk_node(params, 0.5, 20.0, seed);
    util::Rng rng(seed);
    for (int trial = 0; trial < 4; ++trial) {
      const auto s = static_cast<NodeId>(rng.next_below(params.n));
      const auto t = static_cast<NodeId>(rng.next_below(params.n));
      if (s == t) continue;
      expect_same_payments(vcg_payments_naive(g, s, t),
                           vcg_payments_fast(g, s, t),
                           "udg seed " + std::to_string(seed));
    }
  }
}

TEST(FastPayment, DifferentialGrid) {
  // Grids have many equal-cost ties; the engines must still agree on
  // payment values.
  const auto g = graph::make_grid(6, 7, 1.0);
  expect_same_payments(vcg_payments_naive(g, 0, 41),
                       vcg_payments_fast(g, 0, 41), "grid corner-to-corner");
  expect_same_payments(vcg_payments_naive(g, 3, 38),
                       vcg_payments_fast(g, 3, 38), "grid interior");
}

TEST(FastPayment, DifferentialRing) {
  for (std::size_t n : {4, 5, 8, 15}) {
    const auto g = graph::make_ring(n, 1.5);
    expect_same_payments(vcg_payments_naive(g, 0, static_cast<NodeId>(n / 2)),
                         vcg_payments_fast(g, 0, static_cast<NodeId>(n / 2)),
                         "ring n=" + std::to_string(n));
  }
}

TEST(FastPayment, DifferentialSparseNearTree) {
  // Very sparse graphs stress the monopoly/infinite-payment paths.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto g = graph::make_erdos_renyi(20, 0.09, 1.0, 3.0, seed);
    expect_same_payments(vcg_payments_naive(g, 1, 0),
                         vcg_payments_fast(g, 1, 0),
                         "sparse seed " + std::to_string(seed));
  }
}

TEST(FastPayment, DifferentialZeroCostNodes) {
  // Zero-cost relays create massive tie classes.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto g = graph::make_erdos_renyi(22, 0.2, 0.0, 2.0, seed);
    util::Rng rng(seed);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (rng.bernoulli(0.4)) g.set_node_cost(v, 0.0);
    }
    expect_same_payments(vcg_payments_naive(g, 2, 0),
                         vcg_payments_fast(g, 2, 0),
                         "zero-cost seed " + std::to_string(seed));
  }
}

class FastPaymentDensity : public ::testing::TestWithParam<double> {};

TEST_P(FastPaymentDensity, DifferentialAcrossDensities) {
  const double p = GetParam();
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto g = graph::make_erdos_renyi(24, p, 0.3, 6.0, seed * 31);
    expect_same_payments(
        vcg_payments_naive(g, 0, 12), vcg_payments_fast(g, 0, 12),
        "p=" + std::to_string(p) + " seed " + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, FastPaymentDensity,
                         ::testing::Values(0.1, 0.15, 0.25, 0.4, 0.7));

}  // namespace
}  // namespace tc::core
