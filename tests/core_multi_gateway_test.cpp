#include "core/multi_gateway.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fast_payment.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace tc::core {
namespace {

using graph::Cost;
using graph::NodeId;

TEST(MultiGateway, SingleGatewayReducesToUnicast) {
  const auto g = graph::make_fig2_graph();
  const auto multi = multi_gateway_payments(g, 1, {0});
  const auto single = vcg_payments_fast(g, 1, 0);
  ASSERT_TRUE(multi.connected());
  EXPECT_EQ(multi.gateway, 0u);
  EXPECT_EQ(multi.path, single.path);
  EXPECT_DOUBLE_EQ(multi.path_cost, single.path_cost);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(multi.payments[v], single.payments[v]) << "node " << v;
  }
}

TEST(MultiGateway, PicksCheaperGateway) {
  // Path 0 .. 7; gateways at both ends; source near one end.
  const auto g = graph::make_path(8, 1.0);
  const auto r = multi_gateway_payments(g, 2, {0, 7});
  ASSERT_TRUE(r.connected());
  EXPECT_EQ(r.gateway, 0u);  // one relay vs four
  EXPECT_EQ(r.path, (std::vector<NodeId>{2, 1, 0}));
}

TEST(MultiGateway, SecondGatewayCapsPayments) {
  // With one gateway the chain relay is a monopolist; a second gateway
  // bounds every payment by the alternative route.
  auto g = graph::make_path(5, 1.0);
  g.set_node_cost(3, 2.0);  // break the tie: via-0 route is cheaper
  const auto one = multi_gateway_payments(g, 2, {0});
  EXPECT_TRUE(std::isinf(one.total_payment()));
  const auto two = multi_gateway_payments(g, 2, {0, 4});
  ASSERT_TRUE(two.connected());
  EXPECT_FALSE(std::isinf(two.total_payment()));
  EXPECT_EQ(two.gateway, 0u);
  // Gateways are free infrastructure: route 2-1-0 costs 1 (relay 1 only),
  // detour 2-3-4 costs 2, so p_1 = 2 - 1 + 1 = 2; the gateway earns 0.
  EXPECT_DOUBLE_EQ(two.path_cost, 1.0);
  EXPECT_DOUBLE_EQ(two.payments[1], 2.0);
  EXPECT_DOUBLE_EQ(two.payments[0], 0.0);
}

TEST(MultiGateway, GatewayChoiceRespondsToDeclarations) {
  auto g = graph::make_path(8, 1.0);
  const auto before = multi_gateway_payments(g, 2, {0, 7});
  EXPECT_EQ(before.gateway, 0u);
  // Price the short side off.
  g.set_node_cost(1, 50.0);
  const auto after = multi_gateway_payments(g, 2, {0, 7});
  EXPECT_EQ(after.gateway, 7u);
}

TEST(MultiGateway, NoGatewayReachable) {
  graph::NodeGraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  const auto r = multi_gateway_payments(b.build(), 0, {3});
  EXPECT_FALSE(r.connected());
  EXPECT_TRUE(r.path.empty());
}

TEST(MultiGateway, UnilateralLiesStillUnprofitable) {
  // The augmented-sink construction preserves strategyproofness.
  util::Rng rng(3);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto g = graph::make_erdos_renyi(16, 0.3, 0.5, 5.0, seed);
    const std::vector<NodeId> gateways{0, 15};
    const auto truthful = multi_gateway_payments(g, 7, gateways);
    if (!truthful.connected()) continue;
    const auto costs = g.costs();
    for (int trial = 0; trial < 12; ++trial) {
      const auto k = static_cast<NodeId>(1 + rng.next_below(14));
      if (k == 7) continue;
      const bool was_relay =
          std::find(truthful.path.begin() + 1, truthful.path.end() - 1, k) !=
          truthful.path.end() - 1;
      const Cost truthful_utility =
          (std::isinf(truthful.payments[k]) ? 0.0 : truthful.payments[k]) -
          (was_relay ? costs[k] : 0.0);
      auto lied = costs;
      lied[k] = std::max(0.0, costs[k] * rng.uniform(0.3, 3.0));
      g.set_costs(lied);
      const auto out = multi_gateway_payments(g, 7, gateways);
      g.set_costs(costs);
      if (!out.connected() || std::isinf(out.payments[k])) continue;
      const bool is_relay =
          std::find(out.path.begin() + 1, out.path.end() - 1, k) !=
          out.path.end() - 1;
      const Cost lied_utility =
          out.payments[k] - (is_relay ? costs[k] : 0.0);
      if (std::isinf(truthful.payments[k])) continue;
      EXPECT_LE(lied_utility, truthful_utility + 1e-9)
          << "seed " << seed << " node " << k;
    }
  }
}

}  // namespace
}  // namespace tc::core
