// Integration: the deployment facade against the distributed protocol and
// the payment engines on generated topologies.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fast_link_payment.hpp"
#include "core/link_vcg.hpp"
#include "core/service.hpp"
#include "core/transit.hpp"
#include "distsim/session.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace tc {
namespace {

using graph::Cost;
using graph::NodeId;

TEST(IntegrationService, QuotesAgreeWithDistributedProtocol) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto g = graph::make_erdos_renyi(18, 0.3, 0.5, 5.0, seed);
    if (!graph::is_connected(g)) continue;
    core::UnicastService service(g, 0);
    distsim::SessionConfig config;
    config.spt_mode = distsim::SptMode::kVerified;
    config.payment_mode = distsim::PaymentMode::kVerified;
    for (NodeId s = 1; s < g.num_nodes(); s += 4) {
      const auto quote = service.quote(s);
      ASSERT_TRUE(quote.has_value());
      if (std::isinf(quote->total_payment())) continue;
      const auto session = distsim::run_session(g, 0, g.costs(), s, config);
      EXPECT_NEAR(session.total_payment, quote->total_payment(), 1e-6)
          << "seed " << seed << " source " << s;
    }
  }
}

TEST(IntegrationService, RedeclarationPropagatesToTransitStudy) {
  // A relay that re-declares a higher cost loses traffic market share.
  const auto g = graph::make_grid(4, 4, 2.0);
  const auto before = core::transit_payments(g, core::uniform_traffic(16));

  graph::NodeGraph raised = g;
  // Find the top earner and raise its declaration.
  NodeId star = 0;
  for (NodeId v = 1; v < 16; ++v) {
    if (before.compensation[v] > before.compensation[star]) star = v;
  }
  ASSERT_GT(before.compensation[star], 0.0);
  raised.set_node_cost(star, 50.0);
  const auto after = core::transit_payments(raised, core::uniform_traffic(16));
  EXPECT_LT(after.compensation[star], before.compensation[star]);
}

TEST(IntegrationService, FastEnginesAgreeOnPaperTopology) {
  // All three payment views of the same symmetric UDG instance line up:
  // link naive == link fast, and the service's node-model quote uses the
  // same routes.
  graph::UdgParams params;
  params.n = 90;
  params.region = {900.0, 900.0};
  params.range_m = 240.0;
  const auto lg = graph::make_unit_disk_link(params, 77);
  for (NodeId s : {5u, 23u, 61u}) {
    const auto naive = core::link_vcg_payments(lg, s, 0);
    if (!naive.connected()) continue;
    const auto fast = core::fast_link_payments(lg, s, 0);
    ASSERT_EQ(naive.path, fast.path) << "source " << s;
    for (NodeId k = 0; k < lg.num_nodes(); ++k) {
      if (std::isinf(naive.payments[k])) {
        EXPECT_TRUE(std::isinf(fast.payments[k]));
      } else {
        EXPECT_NEAR(naive.payments[k], fast.payments[k], 1e-9)
            << "source " << s << " node " << k;
      }
    }
  }
}

TEST(IntegrationService, SchemeUpgradeCostsMore) {
  // Switching a service from VCG to the collusion-resistant scheme can
  // only raise (never lower) each relay's price — the price of stronger
  // incentives.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto g = graph::make_erdos_renyi(14, 0.5, 0.5, 4.0, seed);
    if (!graph::is_biconnected(g) || !graph::neighborhood_removal_safe(g))
      continue;
    core::UnicastService vcg(g, 0, core::PricingScheme::kVcg);
    core::UnicastService nbr(g, 0, core::PricingScheme::kNeighborResistant);
    for (NodeId s = 1; s < g.num_nodes(); ++s) {
      const auto a = vcg.quote(s);
      const auto b = nbr.quote(s);
      if (!a || !b) continue;
      if (std::isinf(a->total_payment()) ||
          std::isinf(b->total_payment()))
        continue;
      EXPECT_GE(b->total_payment(), a->total_payment() - 1e-9)
          << "seed " << seed << " source " << s;
    }
  }
}

}  // namespace
}  // namespace tc
