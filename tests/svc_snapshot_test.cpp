// Unit tests for the copy-on-write ProfileSnapshot: O(1) overlay
// derivation, lazy memoized materialization, rebase folding, and
// equivalence between overlay-aware cost reads and the materialized
// graph, for both models.
#include "svc/snapshot.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace tc::svc {
namespace {

using graph::Cost;
using graph::NodeId;

constexpr std::size_t kCap = 4;

TEST(ProfileSnapshot, DeriveOverlaysWithoutMaterializing) {
  const auto g = graph::make_grid(3, 3, 2.0);
  const auto base = std::make_shared<const ProfileSnapshot>(1, g);
  EXPECT_TRUE(base->materialized());  // eager construction
  EXPECT_EQ(base->overlay_size(), 0u);

  const auto next = ProfileSnapshot::derive_node(*base, 2, 4, 7.5, kCap);
  EXPECT_EQ(next->epoch(), 2u);
  EXPECT_FALSE(next->materialized());
  EXPECT_EQ(next->overlay_size(), 1u);
  EXPECT_FALSE(next->rebased());
  // Overlay-aware reads see the new cost without materializing.
  EXPECT_EQ(next->node_cost(4), 7.5);
  EXPECT_EQ(next->node_cost(0), g.node_cost(0));
  EXPECT_FALSE(next->materialized());
  // The shared base epoch is untouched.
  EXPECT_EQ(base->node_cost(4), g.node_cost(4));

  // Materialization folds the overlay in and memoizes.
  EXPECT_EQ(next->node().node_cost(4), 7.5);
  EXPECT_TRUE(next->materialized());
  EXPECT_EQ(&next->node(), &next->node());
}

TEST(ProfileSnapshot, RederivingSameNodeKeepsOneOverlayEntry) {
  const auto g = graph::make_grid(3, 3, 2.0);
  const auto base = std::make_shared<const ProfileSnapshot>(1, g);
  auto snap = ProfileSnapshot::derive_node(*base, 2, 4, 7.5, kCap);
  snap = ProfileSnapshot::derive_node(*snap, 3, 4, 9.0, kCap);
  EXPECT_EQ(snap->overlay_size(), 1u);
  EXPECT_EQ(snap->node_cost(4), 9.0);
}

TEST(ProfileSnapshot, DeriveFromMaterializedAdoptsCacheAsBase) {
  const auto g = graph::make_grid(3, 3, 2.0);
  const auto base = std::make_shared<const ProfileSnapshot>(1, g);
  auto s2 = ProfileSnapshot::derive_node(*base, 2, 1, 5.0, kCap);
  (void)s2->node();  // a reader priced against epoch 2
  // The next derivation rebases onto s2's materialized graph: the
  // overlay stays one entry instead of accumulating.
  const auto s3 = ProfileSnapshot::derive_node(*s2, 3, 2, 6.0, kCap);
  EXPECT_EQ(s3->overlay_size(), 1u);
  EXPECT_EQ(s3->node_cost(1), 5.0);
  EXPECT_EQ(s3->node_cost(2), 6.0);
}

TEST(ProfileSnapshot, OverlayExceedingCapFoldsIntoFreshBase) {
  const auto g = graph::make_grid(4, 4, 2.0);
  auto snap = std::shared_ptr<const ProfileSnapshot>(
      std::make_shared<const ProfileSnapshot>(1, g));
  std::uint64_t epoch = 1;
  std::size_t rebases = 0;
  for (NodeId v = 0; v < 12; ++v) {
    snap = ProfileSnapshot::derive_node(*snap, ++epoch, v,
                                        1.0 + static_cast<Cost>(v), kCap);
    if (snap->rebased()) {
      ++rebases;
      EXPECT_EQ(snap->overlay_size(), 0u);
      EXPECT_TRUE(snap->materialized());
    }
  }
  EXPECT_GT(rebases, 0u);
  for (NodeId v = 0; v < 12; ++v) {
    EXPECT_EQ(snap->node_cost(v), 1.0 + static_cast<Cost>(v)) << "node " << v;
    EXPECT_EQ(snap->node().node_cost(v), 1.0 + static_cast<Cost>(v));
  }
}

TEST(ProfileSnapshot, RandomChurnMatchesEagerGraphBothReadPaths) {
  const auto g = graph::make_unit_disk_node({24, {1000.0, 1000.0}, 420.0, 2.0},
                                            0.5, 9.0, /*seed=*/5);
  graph::NodeGraph eager = g;
  auto snap = std::shared_ptr<const ProfileSnapshot>(
      std::make_shared<const ProfileSnapshot>(1, g));
  util::Rng rng(0xc0defeedULL);
  for (std::uint64_t step = 0; step < 200; ++step) {
    const auto v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const Cost c = rng.uniform(0.1, 12.0);
    eager.set_node_cost(v, c);
    snap = ProfileSnapshot::derive_node(*snap, step + 2, v, c, kCap);
    if (step % 7 == 0) (void)snap->node();  // interleave materializations
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      ASSERT_EQ(snap->node_cost(u), eager.node_cost(u)) << "step " << step;
    }
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(snap->node().node_cost(u), eager.node_cost(u));
  }
}

TEST(ProfileSnapshot, LinkModelDerivesAndMaterializes) {
  graph::LinkGraphBuilder b(4);
  b.add_link(0, 1, 1.0, 1.5);
  b.add_link(1, 2, 2.0, 2.5);
  b.add_link(2, 3, 3.0, 3.5);
  const auto g = b.build();
  const auto base = std::make_shared<const ProfileSnapshot>(1, g);
  EXPECT_EQ(base->model(), GraphModel::kLink);

  auto snap = ProfileSnapshot::derive_link(*base, 2, 1, 2, 9.0, kCap);
  EXPECT_FALSE(snap->materialized());
  EXPECT_EQ(snap->arc_cost(1, 2), 9.0);
  EXPECT_EQ(snap->arc_cost(2, 1), 2.5);  // reverse direction untouched
  snap = ProfileSnapshot::derive_link(*snap, 3, 1, 2, 9.5, kCap);
  EXPECT_EQ(snap->overlay_size(), 1u);
  EXPECT_EQ(snap->link().arc_cost(1, 2), 9.5);
  EXPECT_TRUE(snap->materialized());

  // Round-robin re-declarations dedup per arc; the latest write wins on
  // both the overlay read path and the materialized graph.
  std::uint64_t epoch = 3;
  for (int i = 0; i < 8; ++i) {
    const NodeId u = static_cast<NodeId>(i % 3);
    snap = ProfileSnapshot::derive_link(*snap, ++epoch, u, u + 1,
                                        10.0 + static_cast<Cost>(i), kCap);
  }
  EXPECT_EQ(snap->arc_cost(1, 2), 17.0);  // i = 7 was the last (1, 2) write
  EXPECT_EQ(snap->arc_cost(2, 3), 15.0);  // i = 5 was the last (2, 3) write
  EXPECT_EQ(snap->link().arc_cost(1, 2), 17.0);
  EXPECT_EQ(snap->link().arc_cost(2, 3), 15.0);
}

}  // namespace
}  // namespace tc::svc
