// Collusion analysis (paper Section III.E). Theorem 7: the plain VCG
// scheme is vulnerable to 2-agent collusion (an off-path node lifts the
// avoiding path, inflating its partner's payment). Theorem 8: the p~
// scheme resists collusion between neighbors.
#include <gtest/gtest.h>

#include "core/neighbor_collusion.hpp"
#include "core/vcg_unicast.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "mech/truthfulness.hpp"
#include "util/rng.hpp"

namespace tc::core {
namespace {

using graph::NodeId;

// A graph engineered so a relay's avoiding path runs through its own
// neighbor: 0-1-4 is the LCP (relay 1 cheap), 0-2-3-4 the avoiding path,
// and 2 is adjacent to 1.
graph::NodeGraph collusion_gadget() {
  graph::NodeGraphBuilder b(5);
  b.set_node_cost(1, 1.0).set_node_cost(2, 2.0).set_node_cost(3, 2.0);
  b.add_edge(0, 1).add_edge(1, 4);
  b.add_edge(0, 2).add_edge(2, 3).add_edge(3, 4);
  b.add_edge(1, 2);  // the colluding adjacency
  return b.build();
}

TEST(Collusion, VcgVulnerableOnGadget) {
  const auto g = collusion_gadget();
  VcgUnicastMechanism mech;
  util::Rng rng(1);
  const auto report =
      mech::find_pair_collusions(mech, g, 0, 4, g.costs(), rng);
  ASSERT_FALSE(report.ok());
  // The profitable pattern: node 2 (or 3) inflates, node 1's payment
  // (= avoiding path cost difference) grows.
  const auto& best = report.best();
  EXPECT_GT(best.gain(), 0.5);
}

TEST(Collusion, VcgNeighborPairSpecifically) {
  const auto g = collusion_gadget();
  VcgUnicastMechanism mech;
  util::Rng rng(2);
  mech::CollusionOptions options;
  options.neighbors_only = true;
  const auto report =
      mech::find_pair_collusions(mech, g, 0, 4, g.costs(), rng, options);
  EXPECT_FALSE(report.ok())
      << "VCG payments must be inflatable by a neighboring accomplice";
}

TEST(Collusion, VcgVulnerableOnRandomGraphs) {
  // Theorem 7 empirically: across biconnected random instances, the plain
  // VCG scheme admits a profitable pair on a solid majority.
  VcgUnicastMechanism mech;
  int vulnerable = 0, tested = 0;
  for (std::uint64_t seed = 1; seed <= 30 && tested < 10; ++seed) {
    const auto g = graph::make_erdos_renyi(12, 0.3, 0.5, 4.0, seed);
    if (!graph::is_biconnected(g)) continue;
    util::Rng rng(seed);
    const auto report =
        mech::find_pair_collusions(mech, g, 1, 0, g.costs(), rng);
    vulnerable += !report.ok();
    ++tested;
  }
  EXPECT_GE(tested, 6);
  EXPECT_GE(vulnerable, tested / 2);
}

TEST(Collusion, NeighborResistantDefeatsOverdeclaringNeighborPairs) {
  // Theorem 8's operative attack: an accomplice *lifts* its declared cost
  // to inflate a neighboring partner's payment. Under p~ no adjacent pair
  // gains from any over-declaration.
  NeighborResistantMechanism mech;
  int tested = 0;
  for (std::uint64_t seed = 1; seed <= 80 && tested < 6; ++seed) {
    const auto g = graph::make_erdos_renyi(12, 0.5, 0.5, 4.0, seed);
    if (!graph::is_biconnected(g)) continue;
    if (!graph::neighborhood_removal_safe(g)) continue;
    util::Rng rng(seed);
    mech::CollusionOptions options;
    options.neighbors_only = true;
    options.overdeclare_only = true;
    const auto report =
        mech::find_pair_collusions(mech, g, 1, 0, g.costs(), rng, options);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": neighbors gained "
                             << (report.ok() ? 0.0 : report.best().gain());
    ++tested;
  }
  EXPECT_GE(tested, 3);
}

TEST(Collusion, GrovesSchemesAdmitMutualUnderdeclaration) {
  // Boundary of Theorem 8 (a finding of this reproduction): under any
  // Groves scheme — p~ included — two *on-path* neighbors can jointly
  // deflate their declarations. Each deflation is utility-neutral for its
  // own agent but lowers ||P(d)|| and thus raises the partner's payment,
  // so the unrestricted search finds profitable under-declaring pairs.
  NeighborResistantMechanism mech;
  int found = 0, tested = 0;
  for (std::uint64_t seed = 1; seed <= 80 && tested < 6; ++seed) {
    const auto g = graph::make_erdos_renyi(12, 0.5, 0.5, 4.0, seed);
    if (!graph::is_biconnected(g)) continue;
    if (!graph::neighborhood_removal_safe(g)) continue;
    util::Rng rng(seed);
    mech::CollusionOptions options;
    options.neighbors_only = true;  // unrestricted declarations
    const auto report =
        mech::find_pair_collusions(mech, g, 1, 0, g.costs(), rng, options);
    found += !report.ok();
    ++tested;
  }
  EXPECT_GE(tested, 3);
  EXPECT_GT(found, 0) << "mutual deflation should be jointly profitable "
                         "on at least one instance";
}

TEST(Collusion, NeighborResistantOnGadget) {
  // The plain gadget violates the G \ N(v) connectivity precondition, so
  // extend it with a disjoint backstop route before applying p~.
  graph::NodeGraphBuilder b(7);
  b.set_node_cost(1, 1.0).set_node_cost(2, 2.0).set_node_cost(3, 2.0);
  b.set_node_cost(5, 6.0).set_node_cost(6, 6.0);
  b.add_edge(0, 1).add_edge(1, 4);
  b.add_edge(0, 2).add_edge(2, 3).add_edge(3, 4);
  b.add_edge(1, 2);
  b.add_edge(0, 5).add_edge(5, 6).add_edge(6, 4);  // disjoint backstop
  const auto safe = b.build();
  // G \ (N(1) minus the endpoints) must stay connected for p~'s payment
  // to relay 1 to be finite.
  {
    graph::NodeMask mask(safe.num_nodes());
    mask.block(1);
    mask.block(2);  // N(1) = {0, 1, 2, 4}; endpoints 0 and 4 stay
    ASSERT_TRUE(graph::is_connected(safe, mask));
  }
  NeighborResistantMechanism mech;
  util::Rng rng(3);
  mech::CollusionOptions options;
  options.neighbors_only = true;
  options.overdeclare_only = true;
  const auto report =
      mech::find_pair_collusions(mech, safe, 0, 4, safe.costs(), rng, options);
  EXPECT_TRUE(report.ok());
}

TEST(Collusion, ReportBestPicksLargestGain) {
  mech::CollusionReport report;
  report.collusions.push_back({1, 2, 0, 0, 0.0, 1.0});
  report.collusions.push_back({3, 4, 0, 0, 0.0, 5.0});
  report.collusions.push_back({5, 6, 0, 0, 0.0, 2.0});
  EXPECT_EQ(report.best().agent_a, 3u);
}

}  // namespace
}  // namespace tc::core
