#include "sim/experiment.hpp"

#include <gtest/gtest.h>

namespace tc::sim {
namespace {

OverpaymentExperiment small_udg(std::size_t instances = 6) {
  OverpaymentExperiment config;
  config.model = TopologyModel::kUdgLink;
  config.n = 80;
  config.kappa = 2.0;
  config.instances = instances;
  config.region = {1000.0, 1000.0};
  config.udg_range_m = 280.0;
  return config;
}

TEST(Experiment, SingleInstanceDeterministic) {
  const auto config = small_udg();
  const auto a = run_single_instance(config, 3);
  const auto b = run_single_instance(config, 3);
  ASSERT_EQ(a.per_source.size(), b.per_source.size());
  for (std::size_t i = 0; i < a.per_source.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.per_source[i].payment, b.per_source[i].payment);
  }
  EXPECT_DOUBLE_EQ(a.metrics.ior, b.metrics.ior);
}

TEST(Experiment, InstancesDiffer) {
  const auto config = small_udg();
  const auto a = run_single_instance(config, 0);
  const auto b = run_single_instance(config, 1);
  EXPECT_NE(a.metrics.tor, b.metrics.tor);
}

TEST(Experiment, SeedChangesInstances) {
  auto c1 = small_udg();
  auto c2 = small_udg();
  c2.seed = 999;
  EXPECT_NE(run_single_instance(c1, 0).metrics.tor,
            run_single_instance(c2, 0).metrics.tor);
}

TEST(Experiment, AggregateCountsInstances) {
  const auto agg = run_overpayment_experiment(small_udg(5));
  EXPECT_EQ(agg.instances, 5u);
  EXPECT_GT(agg.ior.count, 0u);
  EXPECT_LE(agg.ior.count, 5u);
  EXPECT_GE(agg.worst_overall, agg.worst.mean);
}

TEST(Experiment, RatiosInPlausibleBand) {
  // The paper reports IOR/TOR around 1.5 for UDG deployments; at our
  // smaller test scale just require the metrics to be sane ratios >= 1
  // and not absurdly large.
  const auto agg = run_overpayment_experiment(small_udg(6));
  EXPECT_GE(agg.ior.mean, 1.0);
  EXPECT_LT(agg.ior.mean, 5.0);
  EXPECT_GE(agg.tor.mean, 1.0);
  EXPECT_LT(agg.tor.mean, 5.0);
}

TEST(Experiment, IorAndTorClose) {
  // Paper: "IOR and TOR are almost the same in all our simulations."
  const auto agg = run_overpayment_experiment(small_udg(8));
  EXPECT_NEAR(agg.ior.mean, agg.tor.mean, 0.5);
}

TEST(Experiment, HeteroModelRuns) {
  OverpaymentExperiment config;
  config.model = TopologyModel::kHeteroLink;
  config.n = 80;
  config.kappa = 2.5;
  config.instances = 4;
  config.region = {1000.0, 1000.0};
  const auto agg = run_overpayment_experiment(config);
  EXPECT_GT(agg.ior.count, 0u);
  EXPECT_GE(agg.ior.mean, 1.0);
}

TEST(Experiment, NodeUniformModelRuns) {
  OverpaymentExperiment config;
  config.model = TopologyModel::kNodeUniform;
  config.n = 60;
  config.instances = 4;
  config.region = {900.0, 900.0};
  config.udg_range_m = 280.0;
  const auto agg = run_overpayment_experiment(config);
  EXPECT_GT(agg.ior.count, 0u);
  EXPECT_GE(agg.ior.mean, 1.0);
}

TEST(Experiment, HopDistanceBucketsMonotoneHops) {
  const auto result = run_hop_distance_experiment(small_udg(5));
  ASSERT_GE(result.buckets.size(), 2u);
  for (std::size_t i = 1; i < result.buckets.size(); ++i) {
    EXPECT_GT(result.buckets[i].hops, result.buckets[i - 1].hops);
    EXPECT_GT(result.buckets[i].count, 0u);
  }
  // Ratio means stay in a sane band per bucket.
  for (const auto& b : result.buckets) {
    EXPECT_GE(b.mean_ratio, 1.0 - 1e-9);
    EXPECT_GE(b.max_ratio, b.mean_ratio - 1e-9);
  }
}

TEST(Experiment, HopStudyTotalsMatchPlainExperiment) {
  const auto config = small_udg(4);
  const auto plain = run_overpayment_experiment(config);
  const auto hop = run_hop_distance_experiment(config);
  EXPECT_DOUBLE_EQ(plain.ior.mean, hop.totals.ior.mean);
  EXPECT_DOUBLE_EQ(plain.tor.mean, hop.totals.tor.mean);
}

}  // namespace
}  // namespace tc::sim
