#include "core/transit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fast_payment.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace tc::core {
namespace {

using graph::Cost;
using graph::NodeId;

TEST(Transit, UniformTrafficMatrixShape) {
  const auto t = uniform_traffic(4, 2.5);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_DOUBLE_EQ(t[1][2], 2.5);
  EXPECT_DOUBLE_EQ(t[2][2], 0.0);
}

TEST(Transit, SingleFlowMatchesMechanism) {
  const auto g = graph::make_fig4_graph();
  TrafficMatrix t(9, std::vector<double>(9, 0.0));
  t[8][0] = 1.0;  // one packet v8 -> v0
  const auto result = transit_payments(g, t);
  const auto direct = vcg_payments_fast(g, 8, 0);
  EXPECT_NEAR(result.total_payment, direct.total_payment(), 1e-9);
  EXPECT_NEAR(result.total_traffic_cost, direct.path_cost, 1e-9);
  for (NodeId k = 0; k < 9; ++k) {
    EXPECT_NEAR(result.compensation[k], direct.payments[k], 1e-9)
        << "node " << k;
  }
}

TEST(Transit, IntensityScalesLinearly) {
  // s packets cost s * p_k (Section II.C).
  const auto g = graph::make_fig4_graph();
  TrafficMatrix t(9, std::vector<double>(9, 0.0));
  t[8][0] = 7.0;
  const auto result = transit_payments(g, t);
  EXPECT_NEAR(result.total_payment, 7.0 * 20.0, 1e-9);
}

TEST(Transit, AllPairsMatchesPerPairSum) {
  const auto g = graph::make_erdos_renyi(14, 0.35, 0.5, 5.0, 5);
  ASSERT_TRUE(graph::is_connected(g));
  const auto result = transit_payments(g, uniform_traffic(14));

  std::vector<Cost> expected(14, 0.0);
  Cost expected_total = 0.0;
  std::size_t monopolies = 0;
  for (NodeId i = 0; i < 14; ++i) {
    for (NodeId j = 0; j < 14; ++j) {
      if (i == j) continue;
      const auto r = vcg_payments_fast(g, i, j);
      if (!r.connected()) continue;
      if (std::isinf(r.total_payment())) {
        ++monopolies;
        continue;
      }
      for (NodeId k = 0; k < 14; ++k) expected[k] += r.payments[k];
      expected_total += r.total_payment();
    }
  }
  EXPECT_EQ(result.monopoly_flows, monopolies);
  EXPECT_NEAR(result.total_payment, expected_total, 1e-6);
  for (NodeId k = 0; k < 14; ++k) {
    EXPECT_NEAR(result.compensation[k], expected[k], 1e-6) << "node " << k;
  }
}

TEST(Transit, UnroutableFlowsCounted) {
  graph::NodeGraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  const auto result = transit_payments(b.build(), uniform_traffic(4));
  // 8 of the 12 ordered pairs cross the component boundary.
  EXPECT_EQ(result.unroutable_flows, 8u);
}

TEST(Transit, OverpaymentRatioAtLeastOne) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = graph::make_erdos_renyi(16, 0.3, 0.5, 5.0, seed);
    const auto result = transit_payments(g, uniform_traffic(16));
    if (result.total_traffic_cost <= 0.0) continue;
    EXPECT_GE(result.overpayment_ratio(), 1.0 - 1e-9) << "seed " << seed;
  }
}

TEST(Transit, ZeroIntensityCostsNothing) {
  const auto g = graph::make_ring(6, 1.0);
  TrafficMatrix t(6, std::vector<double>(6, 0.0));
  const auto result = transit_payments(g, t);
  EXPECT_DOUBLE_EQ(result.total_payment, 0.0);
  for (Cost c : result.compensation) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(Transit, AsymmetricTrafficWeighting) {
  // Heavier traffic toward a hub compensates the hub's relays more.
  const auto g = graph::make_ring(8, 1.0);
  TrafficMatrix light = uniform_traffic(8, 1.0);
  TrafficMatrix heavy = uniform_traffic(8, 1.0);
  for (NodeId i = 1; i < 8; ++i) heavy[i][0] = 10.0;
  const auto a = transit_payments(g, light);
  const auto b = transit_payments(g, heavy);
  EXPECT_GT(b.total_payment, a.total_payment);
}

}  // namespace
}  // namespace tc::core
