// Neighbor-trust scoring, adversary schedules, and the end-to-end
// quarantine campaigns. The economics under test mirror the ablation
// bench's acceptance bar: for every adversary class, detection-on must
// strictly reduce the damage that class inflicts (overpayment or failed
// sessions), must never quarantine an honest node, and seeded runs must
// be bit-reproducible.
#include <gtest/gtest.h>

#include <algorithm>

#include "distsim/adversary.hpp"
#include "distsim/trust.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/node_graph.hpp"

namespace tc::distsim {
namespace {

using graph::Cost;
using graph::NodeId;

// ---------------------------------------------------------------------------
// TrustMonitor unit behavior

TEST(TrustMonitor, RepeatedGiveupsCrossTheThreshold) {
  TrustMonitor m(4);
  m.observe_giveup(2);
  EXPECT_FALSE(m.quarantined(2));
  m.observe_giveup(2);
  EXPECT_TRUE(m.quarantined(2));  // 1.0 - 2*0.35 = 0.3 < 0.4
  const auto fresh = m.take_newly_quarantined();
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].node, 2u);
  EXPECT_EQ(fresh[0].action, QuarantineAction::kIsolate);
  EXPECT_TRUE(m.take_newly_quarantined().empty());  // drained once
  // Further evidence against a quarantined node changes nothing.
  m.observe_giveup(2);
  EXPECT_EQ(m.quarantine_count(), 1u);
}

TEST(TrustMonitor, ExemptNodeIsNeverScored) {
  TrustMonitor m(3);
  m.exempt(0);
  for (int i = 0; i < 10; ++i) m.observe_giveup(0);
  EXPECT_FALSE(m.quarantined(0));
  EXPECT_EQ(m.trust(0), 1.0);
}

TEST(TrustMonitor, CleanSessionsRegenerateTrust) {
  TrustMonitor m(2);
  m.observe_giveup(1);  // 0.65
  m.end_session();      // penalized this session: no regeneration
  EXPECT_DOUBLE_EQ(m.trust(1), 0.65);
  m.end_session();  // clean: +0.05
  EXPECT_DOUBLE_EQ(m.trust(1), 0.70);
  for (int i = 0; i < 20; ++i) m.end_session();
  EXPECT_DOUBLE_EQ(m.trust(1), 1.0);  // capped at initial
}

TEST(TrustMonitor, SettlementConflictQuarantinesInOneObservation) {
  TrustMonitor m(5);
  m.observe_settlement_conflict(3);
  EXPECT_TRUE(m.quarantined(3));  // 1.0 - 0.75 = 0.25 < 0.4
}

TEST(TrustMonitor, DeclaredCostOutliersArePriceCapped) {
  TrustMonitor m(12);
  std::vector<Cost> declared(12);
  for (NodeId v = 0; v < 12; ++v)
    declared[v] = 1.6 + 0.1 * static_cast<double>(v);  // spread: 1.6..2.7
  declared[7] = 16.0;  // the inflator
  // Penalty is 0.3 per session: three scans to cross 0.4.
  m.observe_declared_costs(declared);
  m.end_session();
  m.observe_declared_costs(declared);
  m.end_session();
  m.observe_declared_costs(declared);
  EXPECT_FALSE(m.quarantined(3));
  EXPECT_TRUE(m.quarantined(7));
  const auto fresh = m.take_newly_quarantined();
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].action, QuarantineAction::kPriceCap);
  EXPECT_NEAR(fresh[0].cap, 2.15, 0.6);  // the robust median, not the lie
}

TEST(TrustMonitor, UniformProfileHasNoOutliers) {
  TrustMonitor m(8);
  const std::vector<Cost> declared(8, 3.0);  // zero spread: degenerate MAD
  for (int s = 0; s < 5; ++s) {
    m.observe_declared_costs(declared);
    m.end_session();
  }
  for (NodeId v = 0; v < 8; ++v) EXPECT_FALSE(m.quarantined(v));
}

TEST(TrustMonitor, BroadcastFloodersStickOutOfTheMedian) {
  TrustMonitor m(10);
  std::vector<std::uint32_t> counts(10, 5);
  counts[4] = 60;  // way past 4x median and the absolute floor
  counts[6] = 7;   // busy but not anomalous
  m.observe_broadcast_rates(counts);
  EXPECT_LT(m.trust(4), 1.0);
  EXPECT_EQ(m.trust(6), 1.0);
}

TEST(TrustMonitor, DeclarationFloodRate) {
  TrustMonitor m(4);
  m.observe_declarations(1, 2);  // at the rate limit: fine
  EXPECT_EQ(m.trust(1), 1.0);
  m.observe_declarations(1, 3);  // past it
  EXPECT_LT(m.trust(1), 1.0);
}

// ---------------------------------------------------------------------------
// AdversarySchedule

TEST(AdversarySchedule, AssignIsDeterministicAndSparesTheRoot) {
  const auto g = graph::make_erdos_renyi(20, 0.3, 0.5, 5.0, 7);
  ASSERT_TRUE(graph::is_connected(g));
  net::FaultSchedule faults;
  faults.seed = 0x1234;
  const auto a = AdversarySchedule::assign(
      g, 0, AdversaryClass::kSelectiveForwarder, 3, faults);
  const auto b = AdversarySchedule::assign(
      g, 0, AdversaryClass::kSelectiveForwarder, 3, faults);
  EXPECT_EQ(a.roles, b.roles);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.role(0), AdversaryClass::kHonest);
  EXPECT_EQ(a.of_class(AdversaryClass::kSelectiveForwarder).size(), 3u);
}

TEST(AdversarySchedule, CliqueGrowsAroundItsAnchor) {
  const auto g = graph::make_erdos_renyi(20, 0.3, 0.5, 5.0, 7);
  net::FaultSchedule faults;
  const auto s =
      AdversarySchedule::assign(g, 0, AdversaryClass::kCostClique, 3, faults);
  const auto clique = s.of_class(AdversaryClass::kCostClique);
  ASSERT_EQ(clique.size(), 3u);
  // At least one member is adjacent to another (colluders collude
  // locally); with a connected anchor neighborhood all are.
  bool any_adjacent = false;
  for (NodeId u : clique) {
    for (NodeId v : clique) {
      if (u != v && g.has_edge(u, v)) any_adjacent = true;
    }
  }
  EXPECT_TRUE(any_adjacent);
}

TEST(AdversarySchedule, CorruptDeclarationsOnlyTouchTheClique) {
  const auto g = graph::make_erdos_renyi(16, 0.3, 0.5, 5.0, 3);
  net::FaultSchedule faults;
  const auto s =
      AdversarySchedule::assign(g, 0, AdversaryClass::kCostClique, 2, faults);
  const auto declared = s.corrupt_declarations(g.costs());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (s.is(v, AdversaryClass::kCostClique)) {
      EXPECT_DOUBLE_EQ(declared[v], g.costs()[v] * s.cost_inflation);
    } else {
      EXPECT_DOUBLE_EQ(declared[v], g.costs()[v]);
    }
  }
}

TEST(AdversarySchedule, HashDrawsAreStable) {
  const auto g = graph::make_erdos_renyi(16, 0.3, 0.5, 5.0, 3);
  net::FaultSchedule faults;
  const auto s = AdversarySchedule::assign(
      g, 0, AdversaryClass::kSelectiveForwarder, 2, faults);
  const NodeId f = s.of_class(AdversaryClass::kSelectiveForwarder)[0];
  for (std::uint64_t pkt = 0; pkt < 8; ++pkt) {
    EXPECT_EQ(s.drops_data(f, 1, pkt), s.drops_data(f, 1, pkt));
  }
  // Honest nodes never roll the dice.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (s.role(v) == AdversaryClass::kHonest) {
      EXPECT_FALSE(s.drops_data(v, 1, 0));
      EXPECT_FALSE(s.replays(v, 1, 0));
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end campaigns: detection must pay for itself, class by class.

graph::NodeGraph campaign_graph() {
  // Dense enough that quarantining a few relays leaves alternate routes.
  auto g = graph::make_erdos_renyi(20, 0.35, 0.5, 5.0, 42);
  EXPECT_TRUE(graph::is_connected(g));
  return g;
}

CampaignConfig campaign_config(bool detection) {
  CampaignConfig c;
  c.sessions = 12;
  c.data_packets = 3;
  c.detection = detection;
  return c;
}

struct ClassRun {
  CampaignResult off;
  CampaignResult on;
};

ClassRun run_class(const graph::NodeGraph& g, AdversaryClass cls,
                   std::size_t count, std::size_t max_requotes = 3) {
  net::FaultSchedule faults;
  faults.seed = 0xbead;
  const auto adv = AdversarySchedule::assign(g, 0, cls, count, faults);
  ClassRun r;
  CampaignConfig off = campaign_config(false);
  CampaignConfig on = campaign_config(true);
  off.max_requotes = on.max_requotes = max_requotes;
  r.off = run_adversary_campaign(g, 0, adv, off);
  r.on = run_adversary_campaign(g, 0, adv, on);
  return r;
}

TEST(AdversaryCampaign, HonestBaselineIsDetectionInvariant) {
  const auto g = campaign_graph();
  net::FaultSchedule faults;
  const AdversarySchedule honest =
      AdversarySchedule::assign(g, 0, AdversaryClass::kHonest, 0, faults);
  const auto off = run_adversary_campaign(g, 0, honest, campaign_config(false));
  const auto on = run_adversary_campaign(g, 0, honest, campaign_config(true));
  // With nobody misbehaving, the trust layer must be a perfect no-op:
  // same charges to the source, no quarantines, no failed sessions.
  EXPECT_DOUBLE_EQ(off.charged, on.charged);
  EXPECT_EQ(on.quarantines, 0u);
  EXPECT_EQ(off.failed_sessions, 0u);
  EXPECT_EQ(on.failed_sessions, 0u);
  EXPECT_EQ(on.packets_settled, on.packets);
}

TEST(AdversaryCampaign, SeededRunsAreBitReproducible) {
  const auto g = campaign_graph();
  for (const AdversaryClass cls :
       {AdversaryClass::kCostClique, AdversaryClass::kSelectiveForwarder,
        AdversaryClass::kFlooder, AdversaryClass::kReplayer}) {
    const auto a = run_class(g, cls, 2);
    const auto b = run_class(g, cls, 2);
    EXPECT_EQ(a.off.fingerprint, b.off.fingerprint)
        << adversary_class_name(cls);
    EXPECT_EQ(a.on.fingerprint, b.on.fingerprint)
        << adversary_class_name(cls);
    EXPECT_NE(a.off.fingerprint, a.on.fingerprint)
        << adversary_class_name(cls) << ": detection changed nothing";
  }
}

TEST(AdversaryCampaign, CostCliqueOverpaymentShrinksUnderDetection) {
  const auto g = campaign_graph();
  const auto r = run_class(g, AdversaryClass::kCostClique, 3);
  // The clique's inflated declarations poison the threat channel; the
  // price-cap quarantine neuters them, so the sources pay strictly less.
  EXPECT_LT(r.on.charged, r.off.charged);
  EXPECT_GT(r.on.quarantines, 0u);
  EXPECT_EQ(r.on.honest_quarantined, 0u);
  EXPECT_LT(r.on.first_quarantine_session, r.on.sessions);
  EXPECT_LE(r.on.failed_sessions, r.off.failed_sessions);
}

TEST(AdversaryCampaign, SelectiveForwardersFailFewerSessionsUnderDetection) {
  const auto g = campaign_graph();
  // A tight re-quote budget models a latency-bound AP: every stall burns
  // the budget, so sessions that keep tripping over forwarders fail.
  const auto r =
      run_class(g, AdversaryClass::kSelectiveForwarder, 3, /*max_requotes=*/1);
  EXPECT_LT(r.on.failed_sessions, r.off.failed_sessions);
  // Persistent quarantine also means the AP stops burning re-quotes on
  // relays it already knows are rotten.
  EXPECT_LT(r.on.requotes, r.off.requotes);
  EXPECT_GT(r.on.quarantines, 0u);
  EXPECT_EQ(r.on.honest_quarantined, 0u);
}

TEST(AdversaryCampaign, FloodersAreQuarantinedAndSettlementRecovers) {
  const auto g = campaign_graph();
  const auto r = run_class(g, AdversaryClass::kFlooder, 2);
  // Without detection the flooders invalidate every quote before the AP
  // can settle it; with detection they are condemned within the first
  // session or two and settlement goes back to normal.
  EXPECT_LT(r.on.failed_sessions, r.off.failed_sessions);
  EXPECT_GT(r.off.stale_epoch_rejects, r.on.stale_epoch_rejects);
  EXPECT_GT(r.on.quarantines, 0u);
  EXPECT_EQ(r.on.honest_quarantined, 0u);
}

TEST(AdversaryCampaign, ReplayersHijackLessUnderDetection) {
  const auto g = campaign_graph();
  const auto r = run_class(g, AdversaryClass::kReplayer, 2);
  EXPECT_GT(r.off.hijacked_settles, 0u);
  EXPECT_LT(r.on.hijacked_settles, r.off.hijacked_settles);
  EXPECT_LT(r.on.charged, r.off.charged);
  EXPECT_GT(r.on.quarantines, 0u);
  EXPECT_EQ(r.on.honest_quarantined, 0u);
}

}  // namespace
}  // namespace tc::distsim
