#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace tc::util {
namespace {

TEST(CsvEscape, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, CommaQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuoteDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter w(out);
  w.header({"n", "ior", "label"});
  w.field(100).field(1.5).field("udg");
  w.end_row();
  EXPECT_EQ(out.str(), "n,ior,label\n100,1.5,udg\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(CsvWriter, DoubleRoundTripPrecision) {
  std::ostringstream out;
  CsvWriter w(out);
  w.field(1.0 / 3.0);
  w.end_row();
  const double parsed = std::stod(out.str());
  EXPECT_NEAR(parsed, 1.0 / 3.0, 1e-9);
}

TEST(CsvWriter, UnsignedAndSigned) {
  std::ostringstream out;
  CsvWriter w(out);
  w.field(std::int64_t{-5}).field(std::uint64_t{18446744073709551615ULL});
  w.end_row();
  EXPECT_EQ(out.str(), "-5,18446744073709551615\n");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.row("x", 1);
  t.row("longer", 22);
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, MixedCellTypes) {
  TextTable t({"a", "b", "c"});
  t.row(1.23456789, std::size_t{7}, "str");
  EXPECT_EQ(t.num_rows(), 1u);
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("1.2346"), std::string::npos);
}

TEST(Fmt, RespectsPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 4), "1.0000");
}

}  // namespace
}  // namespace tc::util
