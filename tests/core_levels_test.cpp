// Structural tests of Algorithm 1's level labelling (paper step 2) and the
// paper's Lemmas 1 and 2 on random instances.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/fast_payment.hpp"
#include "graph/generators.hpp"
#include "spath/avoiding.hpp"
#include "spath/dijkstra.hpp"

namespace tc::core {
namespace {

using graph::NodeId;

TEST(Levels, PathNodesGetTheirIndex) {
  const auto g = graph::make_ring(8);
  const LevelLabels labels = compute_levels(g, 0, 4);
  ASSERT_EQ(labels.path.size(), 5u);
  for (std::uint32_t l = 0; l < labels.path.size(); ++l) {
    EXPECT_EQ(labels.levels[labels.path[l]], l);
  }
}

TEST(Levels, OffPathNodesInheritBranchPoint) {
  // Ring 8: LCP 0..4 one way; nodes 7, 6, 5 hang off the root side of
  // SPT(0) until they attach near 4.
  const auto g = graph::make_ring(8);
  const LevelLabels labels = compute_levels(g, 0, 4);
  // Node 7 is a direct neighbor of 0 => level 0.
  EXPECT_EQ(labels.levels[7], 0u);
}

TEST(Levels, DisconnectedTargetEmpty) {
  graph::NodeGraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  const LevelLabels labels = compute_levels(b.build(), 0, 3);
  EXPECT_TRUE(labels.path.empty());
}

TEST(Levels, UnreachableNodesInvalid) {
  graph::NodeGraphBuilder b(5);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(3, 4);
  const LevelLabels labels = compute_levels(b.build(), 0, 2);
  EXPECT_EQ(labels.levels[3], LevelLabels::kInvalidLevel);
  EXPECT_EQ(labels.levels[4], LevelLabels::kInvalidLevel);
}

TEST(Levels, EveryReachableNodeHasLevelWithinPath) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto g = graph::make_erdos_renyi(30, 0.15, 0.5, 4.0, seed);
    const LevelLabels labels = compute_levels(g, 0, 15);
    if (labels.path.empty()) continue;
    const auto spt = spath::dijkstra_node(g, 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!spt.reached(v)) continue;
      ASSERT_NE(labels.levels[v], LevelLabels::kInvalidLevel) << v;
      EXPECT_LT(labels.levels[v], labels.path.size()) << v;
    }
  }
}

TEST(Levels, RemovalStrandsExactlyLevelNodes) {
  // Defining property: removing r_l from SPT(s) strands, among off-path
  // nodes, exactly those with level l (they connect to neither side within
  // the tree).
  const auto g = graph::make_erdos_renyi(26, 0.16, 0.5, 4.0, 7);
  const LevelLabels labels = compute_levels(g, 0, 13);
  ASSERT_GE(labels.path.size(), 3u);
  const auto spt = spath::dijkstra_node(g, 0);

  // Build tree adjacency.
  std::vector<std::vector<NodeId>> children(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (spt.parent[v] != graph::kInvalidNode) children[spt.parent[v]].push_back(v);
  }
  std::vector<bool> on_path(g.num_nodes(), false);
  for (NodeId v : labels.path) on_path[v] = true;

  for (std::uint32_t l = 1; l + 1 < labels.path.size(); ++l) {
    const NodeId removed = labels.path[l];
    // BFS over the tree from the source, skipping `removed`.
    std::vector<bool> reach_s(g.num_nodes(), false);
    std::vector<NodeId> stack{0};
    reach_s[0] = true;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId w : children[u]) {
        if (w == removed) continue;
        reach_s[w] = true;
        stack.push_back(w);
      }
    }
    // The subtree under r_{l+1} stays attached to the target side.
    std::vector<bool> reach_t(g.num_nodes(), false);
    stack.assign(1, labels.path[l + 1]);
    reach_t[labels.path[l + 1]] = true;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId w : children[u]) {
        reach_t[w] = true;
        stack.push_back(w);
      }
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == removed || on_path[v]) continue;
      if (labels.levels[v] == LevelLabels::kInvalidLevel) continue;
      const bool stranded = !reach_s[v] && !reach_t[v];
      EXPECT_EQ(stranded, labels.levels[v] == l)
          << "node " << v << " level " << labels.levels[v] << " removed r_"
          << l;
    }
  }
}

TEST(Lemma1, AvoidingPathLevelsThresholdMonotone) {
  // Once the r_l-avoiding path reaches a node of level >= l, every later
  // node also has level >= l.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto g = graph::make_erdos_renyi(26, 0.2, 0.5, 5.0, seed);
    const LevelLabels labels = compute_levels(g, 0, 13);
    if (labels.path.size() < 4) continue;
    for (std::uint32_t l = 1; l + 1 < labels.path.size(); ++l) {
      const auto avoid =
          spath::avoiding_path_node(g, 0, 13, labels.path[l]);
      if (avoid.path.empty()) continue;
      bool crossed = false;
      for (NodeId v : avoid.path) {
        const bool high = labels.levels[v] >= l;
        if (crossed) {
          EXPECT_TRUE(high) << "seed " << seed << " l " << l;
        }
        crossed |= high;
      }
    }
  }
}

TEST(Lemma3, LowLevelDetoursExcludeNodeFromAvoidingPath) {
  // If P(v_k, t, G \ r_l) passes through a node of lower level than v_k,
  // then v_k is not on the s->t avoiding path P_{-r_l}(s, t).
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto g = graph::make_erdos_renyi(24, 0.2, 0.5, 5.0, seed * 29);
    const LevelLabels labels = compute_levels(g, 0, 12);
    if (labels.path.size() < 4) continue;
    for (std::uint32_t l = 1; l + 1 < labels.path.size(); ++l) {
      const NodeId removed = labels.path[l];
      const auto avoid = spath::avoiding_path_node(g, 0, 12, removed);
      if (avoid.path.empty()) continue;
      std::vector<bool> on_avoiding(g.num_nodes(), false);
      for (NodeId v : avoid.path) on_avoiding[v] = true;

      graph::NodeMask mask(g.num_nodes());
      mask.block(removed);
      const auto from_t = spath::dijkstra_node(g, 12, mask);
      for (NodeId k = 0; k < g.num_nodes(); ++k) {
        if (k == 0 || k == 12 || k == removed) continue;
        if (labels.levels[k] == LevelLabels::kInvalidLevel) continue;
        if (!from_t.reached(k)) continue;
        const auto detour = from_t.path_to(k);  // t..k, membership symmetric
        bool dips_lower = false;
        for (NodeId w : detour) {
          if (w == k) continue;
          if (labels.levels[w] != LevelLabels::kInvalidLevel &&
              labels.levels[w] < labels.levels[k]) {
            dips_lower = true;
            break;
          }
        }
        if (dips_lower) {
          EXPECT_FALSE(on_avoiding[k])
              << "seed " << seed << " l " << l << " node " << k;
        }
      }
    }
  }
}

TEST(Lemma2, ShortestPathToTargetAvoidsLowerLevels) {
  // P(v_k, t, G) contains no LCP node r_a with a < level(v_k) (strictly
  // positive costs).
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto g = graph::make_erdos_renyi(26, 0.2, 0.5, 5.0, seed * 13);
    const LevelLabels labels = compute_levels(g, 0, 13);
    if (labels.path.size() < 3) continue;
    std::vector<std::uint32_t> path_index(g.num_nodes(),
                                          LevelLabels::kInvalidLevel);
    for (std::uint32_t l = 0; l < labels.path.size(); ++l)
      path_index[labels.path[l]] = l;
    const auto sptT = spath::dijkstra_node(g, 13);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (labels.levels[v] == LevelLabels::kInvalidLevel || !sptT.reached(v))
        continue;
      const auto path = sptT.path_to(v);  // t..v; membership is symmetric
      for (NodeId w : path) {
        if (w == v) continue;
        if (path_index[w] != LevelLabels::kInvalidLevel) {
          EXPECT_GE(path_index[w], labels.levels[v])
              << "seed " << seed << " node " << v;
        }
      }
    }
  }
}

}  // namespace
}  // namespace tc::core
