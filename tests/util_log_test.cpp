#include "util/log.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace tc::util {
namespace {

TEST(Log, LevelRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(Log, SuppressedLevelsDoNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  // These must be no-ops (and must not evaluate into UB).
  TC_LOG_DEBUG("invisible %d", 42);
  TC_LOG_INFO("also invisible %s", "text");
  TC_LOG_WARN("still invisible");
  set_log_level(original);
}

TEST(Log, ErrorAlwaysAllowedToFormat) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  TC_LOG_ERROR("formatted %d %s %.2f", 1, "two", 3.0);
  set_log_level(original);
}

TEST(Check, PassingCheckIsSilent) {
  TC_CHECK(1 + 1 == 2);
  TC_CHECK_MSG(true, "never shown");
}

TEST(CheckDeath, FailingCheckAborts) {
  EXPECT_DEATH(TC_CHECK(false), "CHECK failed");
  EXPECT_DEATH(TC_CHECK_MSG(2 > 3, "math broke"), "math broke");
}

}  // namespace
}  // namespace tc::util
