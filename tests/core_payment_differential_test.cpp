// Differential tests pinning the rewired payment engines to the pre-PR
// allocating implementations. Each reference below replicates the old
// engine body verbatim on top of the allocating spath API; the live
// engines (now built on DijkstraWorkspace + MaskedSptDelta) must agree
// bit for bit — same payments, same metrics, same monopoly/skip counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/edge_vcg.hpp"
#include "core/link_vcg.hpp"
#include "core/neighbor_collusion.hpp"
#include "core/overpayment.hpp"
#include "core/transit.hpp"
#include "core/vcg_unicast.hpp"
#include "graph/generators.hpp"
#include "spath/avoiding.hpp"
#include "spath/dijkstra.hpp"

namespace tc::core {
namespace {

using graph::Cost;
using graph::kInfCost;
using graph::kInvalidNode;
using graph::NodeId;

constexpr std::uint64_t kSeeds = 40;

void expect_bits_equal(const std::vector<Cost>& a, const std::vector<Cost>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(Cost)), 0);
}

// --- pre-PR reference implementations ------------------------------------

PaymentResult ref_vcg_payments_naive(const graph::NodeGraph& g, NodeId source,
                                     NodeId target) {
  PaymentResult result;
  result.payments.assign(g.num_nodes(), 0.0);
  const spath::SptResult spt = spath::dijkstra_node(g, source);
  if (!spt.reached(target)) return result;
  result.path = spt.path_to(target);
  result.path_cost = spt.dist[target];
  for (std::size_t i = 1; i + 1 < result.path.size(); ++i) {
    const NodeId k = result.path[i];
    graph::NodeMask mask(g.num_nodes());
    mask.block(k);
    const spath::SptResult avoid = spath::dijkstra_node(g, source, mask);
    const Cost cost = avoid.reached(target) ? avoid.dist[target] : kInfCost;
    result.payments[k] = graph::finite_cost(cost)
                             ? cost - result.path_cost + g.node_cost(k)
                             : kInfCost;
  }
  return result;
}

PaymentResult ref_neighbor_resistant(const graph::NodeGraph& g, NodeId source,
                                     NodeId target) {
  PaymentResult result;
  result.payments.assign(g.num_nodes(), 0.0);
  const spath::SptResult spt = spath::dijkstra_node(g, source);
  if (!spt.reached(target)) return result;
  result.path = spt.path_to(target);
  result.path_cost = spt.dist[target];
  std::vector<bool> on_path(g.num_nodes(), false);
  for (std::size_t i = 1; i + 1 < result.path.size(); ++i)
    on_path[result.path[i]] = true;
  for (NodeId k = 0; k < g.num_nodes(); ++k) {
    if (k == source || k == target) continue;
    graph::NodeMask mask(g.num_nodes());
    for (NodeId v : closed_neighborhood(g, k)) {
      if (v != source && v != target) mask.block(v);
    }
    const spath::SptResult avoid = spath::dijkstra_node(g, source, mask);
    const Cost avoid_cost =
        avoid.reached(target) ? avoid.dist[target] : kInfCost;
    if (!graph::finite_cost(avoid_cost)) {
      result.payments[k] = kInfCost;
      continue;
    }
    result.payments[k] = (on_path[k] ? g.node_cost(k) : 0.0) +
                         (avoid_cost - result.path_cost);
  }
  return result;
}

PaymentResult ref_link_vcg(const graph::LinkGraph& g, NodeId source,
                           NodeId target) {
  PaymentResult result;
  result.payments.assign(g.num_nodes(), 0.0);
  const spath::SptResult spt = spath::dijkstra_link(g, source);
  if (!spt.reached(target)) return result;
  result.path = spt.path_to(target);
  result.path_cost = spt.dist[target];
  for (std::size_t i = 1; i + 1 < result.path.size(); ++i) {
    const NodeId k = result.path[i];
    graph::NodeMask mask(g.num_nodes());
    mask.block(k);
    const spath::SptResult avoid = spath::dijkstra_link(g, source, mask);
    const Cost avoid_cost =
        avoid.reached(target) ? avoid.dist[target] : kInfCost;
    if (!graph::finite_cost(avoid_cost)) {
      result.payments[k] = kInfCost;
      continue;
    }
    const Cost own = node_arc_cost_on_path(g, result.path, k);
    result.payments[k] = own + (avoid_cost - result.path_cost);
  }
  return result;
}

EdgeVcgResult ref_edge_vcg_naive(const graph::LinkGraph& g, NodeId source,
                                 NodeId target) {
  EdgeVcgResult result;
  const spath::SptResult spt = spath::dijkstra_link(g, source);
  if (!spt.reached(target)) return result;
  result.path = spt.path_to(target);
  result.path_cost = spt.dist[target];
  graph::LinkGraph work = g;
  for (std::size_t i = 0; i + 1 < result.path.size(); ++i) {
    const NodeId u = result.path[i];
    const NodeId v = result.path[i + 1];
    const Cost w = g.arc_cost(u, v);
    work.set_arc_cost(u, v, kInfCost);
    work.set_arc_cost(v, u, kInfCost);
    const spath::SptResult detour = spath::dijkstra_link(work, source);
    work.set_arc_cost(u, v, w);
    work.set_arc_cost(v, u, w);
    EdgePayment payment;
    payment.u = u;
    payment.v = v;
    payment.declared = w;
    payment.payment = detour.reached(target)
                          ? detour.dist[target] - result.path_cost + w
                          : kInfCost;
    result.payments.push_back(payment);
  }
  return result;
}

/// Replica of the pre-PR study_from_tree (overpayment.cpp) with the old
/// full-masked-Dijkstra avoid_dist lambdas.
template <typename AvoidDistFn, typename RelayChargeFn, typename SourceOwnFn>
OverpaymentResult ref_study_from_tree(std::size_t n, NodeId ap,
                                      const spath::SptResult& to_ap,
                                      AvoidDistFn&& avoid_dist,
                                      RelayChargeFn&& relay_charge,
                                      SourceOwnFn&& source_own_cost) {
  OverpaymentResult result;
  std::size_t skipped = 0;
  std::size_t monopolies = 0;
  std::vector<bool> is_relay(n, false);
  for (NodeId i = 0; i < n; ++i) {
    if (i == ap || !to_ap.reached(i)) continue;
    const NodeId p = to_ap.parent[i];
    if (p != kInvalidNode && p != ap) is_relay[p] = true;
  }
  std::vector<std::vector<Cost>> avoid_cache(n);
  auto avoid_for = [&](NodeId k) -> const std::vector<Cost>& {
    if (avoid_cache[k].empty()) avoid_cache[k] = avoid_dist(k);
    return avoid_cache[k];
  };
  for (NodeId i = 0; i < n; ++i) {
    if (i == ap) continue;
    if (!to_ap.reached(i)) {
      ++skipped;
      continue;
    }
    SourceOverpayment src;
    src.source = i;
    const Cost full_cost = to_ap.dist[i];
    src.lcp_cost = full_cost - source_own_cost(i);
    bool monopoly = false;
    Cost payment = 0.0;
    std::size_t hops = 0;
    for (NodeId k = to_ap.parent[i]; k != kInvalidNode && !monopoly;
         k = to_ap.parent[k]) {
      ++hops;
      if (k == ap) break;
      const Cost avoided = avoid_for(k)[i];
      if (!graph::finite_cost(avoided)) {
        monopoly = true;
        break;
      }
      payment += relay_charge(k) + (avoided - full_cost);
    }
    if (monopoly) {
      ++monopolies;
      continue;
    }
    src.payment = payment;
    src.hops = hops;
    if (src.hops <= 1) ++skipped;
    result.per_source.push_back(src);
  }
  result.metrics = summarize_overpayment(result.per_source, monopolies, skipped);
  return result;
}

OverpaymentResult ref_overpayment_node(const graph::NodeGraph& g, NodeId ap) {
  const spath::SptResult to_ap = spath::dijkstra_node(g, ap);
  auto avoid_dist = [&](NodeId k) {
    graph::NodeMask mask(g.num_nodes());
    mask.block(k);
    return spath::dijkstra_node(g, ap, mask).dist;
  };
  auto relay_charge = [&](NodeId k) { return g.node_cost(k); };
  auto source_own = [](NodeId) { return 0.0; };
  return ref_study_from_tree(g.num_nodes(), ap, to_ap, avoid_dist,
                             relay_charge, source_own);
}

OverpaymentResult ref_overpayment_link(const graph::LinkGraph& g, NodeId ap) {
  const graph::LinkGraph rev = spath::reverse_graph(g);
  const spath::SptResult to_ap = spath::dijkstra_link(rev, ap);
  auto avoid_dist = [&](NodeId k) {
    graph::NodeMask mask(g.num_nodes());
    mask.block(k);
    return spath::dijkstra_link(rev, ap, mask).dist;
  };
  auto relay_charge = [&](NodeId k) { return g.arc_cost(k, to_ap.parent[k]); };
  auto source_own = [&](NodeId i) {
    const NodeId first_hop = to_ap.parent[i];
    return first_hop == kInvalidNode ? 0.0 : g.arc_cost(i, first_hop);
  };
  return ref_study_from_tree(g.num_nodes(), ap, to_ap, avoid_dist,
                             relay_charge, source_own);
}

TransitResult ref_transit(const graph::NodeGraph& g,
                          const TrafficMatrix& intensity) {
  const std::size_t n = g.num_nodes();
  TransitResult result;
  result.compensation.assign(n, 0.0);
  for (NodeId j = 0; j < n; ++j) {
    bool any_flow = false;
    for (NodeId i = 0; i < n; ++i) {
      if (i != j && intensity[i][j] > 0.0) {
        any_flow = true;
        break;
      }
    }
    if (!any_flow) continue;
    const spath::SptResult to_j = spath::dijkstra_node(g, j);
    std::vector<std::vector<Cost>> avoid_cache(n);
    auto avoid_for = [&](NodeId k) -> const std::vector<Cost>& {
      if (avoid_cache[k].empty()) {
        graph::NodeMask mask(n);
        mask.block(k);
        avoid_cache[k] = spath::dijkstra_node(g, j, mask).dist;
      }
      return avoid_cache[k];
    };
    for (NodeId i = 0; i < n; ++i) {
      if (i == j) continue;
      const double packets = intensity[i][j];
      if (packets <= 0.0) continue;
      if (!to_j.reached(i)) {
        ++result.unroutable_flows;
        continue;
      }
      Cost flow_payment = 0.0;
      bool monopoly = false;
      std::vector<std::pair<NodeId, Cost>> relay_shares;
      for (NodeId k = to_j.parent[i]; k != j && k != kInvalidNode;
           k = to_j.parent[k]) {
        const Cost avoided = avoid_for(k)[i];
        if (!graph::finite_cost(avoided)) {
          monopoly = true;
          break;
        }
        const Cost p = g.node_cost(k) + (avoided - to_j.dist[i]);
        relay_shares.emplace_back(k, p);
        flow_payment += p;
      }
      if (monopoly) {
        ++result.monopoly_flows;
        continue;
      }
      for (const auto& [k, p] : relay_shares) {
        result.compensation[k] += packets * p;
      }
      result.total_payment += packets * flow_payment;
      result.total_traffic_cost += packets * to_j.dist[i];
    }
  }
  return result;
}

// --- differential checks ---------------------------------------------------

void expect_same_payment(const PaymentResult& got, const PaymentResult& want) {
  EXPECT_EQ(got.path, want.path);
  EXPECT_EQ(got.path_cost, want.path_cost);
  expect_bits_equal(got.payments, want.payments);
}

graph::NodeGraph random_node_graph(std::uint64_t seed) {
  return graph::make_erdos_renyi(48, 0.12, 0.1, 9.0, seed);
}

TEST(PaymentDifferential, VcgNaiveMatchesReference) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto g = random_node_graph(seed);
    const NodeId s = static_cast<NodeId>(seed % g.num_nodes());
    const NodeId t = static_cast<NodeId>((seed * 17 + 5) % g.num_nodes());
    if (s == t) continue;
    expect_same_payment(vcg_payments_naive(g, s, t),
                        ref_vcg_payments_naive(g, s, t));
  }
}

TEST(PaymentDifferential, NeighborResistantMatchesReference) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto g = random_node_graph(seed);
    const NodeId s = static_cast<NodeId>(seed % g.num_nodes());
    const NodeId t = static_cast<NodeId>((seed * 17 + 5) % g.num_nodes());
    if (s == t) continue;
    expect_same_payment(neighbor_resistant_payments(g, s, t),
                        ref_neighbor_resistant(g, s, t));
  }
}

TEST(PaymentDifferential, LinkVcgMatchesReference) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    graph::HeteroParams params;
    params.n = 48;
    const auto g = graph::make_hetero_geometric(params, seed);
    const NodeId s = static_cast<NodeId>(seed % g.num_nodes());
    const NodeId t = static_cast<NodeId>((seed * 17 + 5) % g.num_nodes());
    if (s == t) continue;
    expect_same_payment(link_vcg_payments(g, s, t), ref_link_vcg(g, s, t));
  }
}

TEST(PaymentDifferential, EdgeVcgNaiveMatchesReference) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    graph::UdgParams params;
    params.n = 48;  // symmetric costs, as edge-agent VCG requires
    const auto g = graph::make_unit_disk_link(params, seed);
    const NodeId s = static_cast<NodeId>(seed % g.num_nodes());
    const NodeId t = static_cast<NodeId>((seed * 17 + 5) % g.num_nodes());
    if (s == t) continue;
    const EdgeVcgResult got = edge_vcg_payments_naive(g, s, t);
    const EdgeVcgResult want = ref_edge_vcg_naive(g, s, t);
    EXPECT_EQ(got.path, want.path);
    EXPECT_EQ(got.path_cost, want.path_cost);
    ASSERT_EQ(got.payments.size(), want.payments.size());
    for (std::size_t i = 0; i < got.payments.size(); ++i) {
      EXPECT_EQ(got.payments[i].u, want.payments[i].u);
      EXPECT_EQ(got.payments[i].v, want.payments[i].v);
      EXPECT_EQ(got.payments[i].declared, want.payments[i].declared);
      EXPECT_EQ(got.payments[i].payment, want.payments[i].payment);
    }
  }
}

void expect_same_overpayment(const OverpaymentResult& got,
                             const OverpaymentResult& want) {
  ASSERT_EQ(got.per_source.size(), want.per_source.size());
  for (std::size_t i = 0; i < got.per_source.size(); ++i) {
    EXPECT_EQ(got.per_source[i].source, want.per_source[i].source);
    EXPECT_EQ(got.per_source[i].payment, want.per_source[i].payment);
    EXPECT_EQ(got.per_source[i].lcp_cost, want.per_source[i].lcp_cost);
    EXPECT_EQ(got.per_source[i].hops, want.per_source[i].hops);
  }
  EXPECT_EQ(got.metrics.tor, want.metrics.tor);
  EXPECT_EQ(got.metrics.ior, want.metrics.ior);
  EXPECT_EQ(got.metrics.worst, want.metrics.worst);
  EXPECT_EQ(got.metrics.sources_counted, want.metrics.sources_counted);
  EXPECT_EQ(got.metrics.sources_skipped, want.metrics.sources_skipped);
  EXPECT_EQ(got.metrics.monopoly_sources, want.metrics.monopoly_sources);
}

TEST(PaymentDifferential, OverpaymentNodeModelMatchesReference) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto g = random_node_graph(seed);
    expect_same_overpayment(overpayment_node_model(g, 0),
                            ref_overpayment_node(g, 0));
  }
}

TEST(PaymentDifferential, OverpaymentLinkModelMatchesReference) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    graph::UdgParams params;
    params.n = 64;
    const auto g = graph::make_unit_disk_link(params, seed);
    expect_same_overpayment(overpayment_link_model(g, 0),
                            ref_overpayment_link(g, 0));
  }
}

TEST(PaymentDifferential, OverpaymentHeteroLinkMatchesReference) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    graph::HeteroParams params;
    params.n = 64;
    const auto g = graph::make_hetero_geometric(params, seed);
    expect_same_overpayment(overpayment_link_model(g, 0),
                            ref_overpayment_link(g, 0));
  }
}

TEST(PaymentDifferential, TransitMatchesReference) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto g = graph::make_erdos_renyi(24, 0.2, 0.1, 9.0, seed);
    const TrafficMatrix traffic = uniform_traffic(g.num_nodes(), 1.0);
    const TransitResult got = transit_payments(g, traffic);
    const TransitResult want = ref_transit(g, traffic);
    expect_bits_equal(got.compensation, want.compensation);
    EXPECT_EQ(got.total_payment, want.total_payment);
    EXPECT_EQ(got.total_traffic_cost, want.total_traffic_cost);
    EXPECT_EQ(got.unroutable_flows, want.unroutable_flows);
    EXPECT_EQ(got.monopoly_flows, want.monopoly_flows);
  }
}

}  // namespace
}  // namespace tc::core
