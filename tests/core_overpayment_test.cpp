#include "core/overpayment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fast_payment.hpp"
#include "core/link_vcg.hpp"
#include "graph/generators.hpp"

namespace tc::core {
namespace {

using graph::NodeId;

TEST(Overpayment, NodeModelMatchesPerSourceEngine) {
  // The batched study must agree with running the fast engine per source.
  const auto g = graph::make_erdos_renyi(24, 0.25, 0.5, 5.0, 3);
  const OverpaymentResult study = overpayment_node_model(g, 0);
  for (const SourceOverpayment& s : study.per_source) {
    const PaymentResult direct = vcg_payments_fast(g, s.source, 0);
    ASSERT_TRUE(direct.connected());
    EXPECT_NEAR(s.lcp_cost, direct.path_cost, 1e-9) << "source " << s.source;
    EXPECT_NEAR(s.payment, direct.total_payment(), 1e-9)
        << "source " << s.source;
    EXPECT_EQ(s.hops, direct.path.size() - 1);
  }
}

TEST(Overpayment, LinkModelMatchesPerSourceEngine) {
  graph::UdgParams params;
  params.n = 60;
  params.region = {800.0, 800.0};
  params.range_m = 250.0;
  const auto g = graph::make_unit_disk_link(params, 5);
  const OverpaymentResult study = overpayment_link_model(g, 0);
  for (const SourceOverpayment& s : study.per_source) {
    const PaymentResult direct = link_vcg_payments(g, s.source, 0);
    ASSERT_TRUE(direct.connected());
    // The study's denominator excludes the source's own first-arc cost.
    const double own = g.arc_cost(direct.path[0], direct.path[1]);
    EXPECT_NEAR(s.lcp_cost, direct.path_cost - own, 1e-9)
        << "source " << s.source;
    if (!std::isinf(direct.total_payment())) {
      EXPECT_NEAR(s.payment, direct.total_payment(), 1e-9)
          << "source " << s.source;
    }
  }
}

TEST(Overpayment, RatiosAtLeastOne) {
  // Every relay is paid at least its cost, so p_i >= c(i,0) and all three
  // ratio metrics are >= 1 whenever defined.
  const auto g = graph::make_erdos_renyi(30, 0.2, 0.5, 5.0, 7);
  const OverpaymentResult study = overpayment_node_model(g, 0);
  ASSERT_GT(study.metrics.sources_counted, 0u);
  EXPECT_GE(study.metrics.tor, 1.0);
  EXPECT_GE(study.metrics.ior, 1.0);
  EXPECT_GE(study.metrics.worst, study.metrics.ior);
}

TEST(Overpayment, OneHopSourcesExcludedFromIor) {
  // Star + one far node: most sources are 1 hop from the AP.
  graph::NodeGraphBuilder b(6);
  b.set_node_cost(1, 1.0).set_node_cost(2, 1.0);
  for (NodeId v = 1; v <= 4; ++v) b.add_edge(0, v);
  b.add_edge(1, 5).add_edge(2, 5);
  const OverpaymentResult study = overpayment_node_model(b.build(), 0);
  // Only node 5 has relays.
  EXPECT_EQ(study.metrics.sources_counted, 1u);
  EXPECT_GT(study.metrics.sources_skipped, 0u);
}

TEST(Overpayment, MonopolySourcesExcluded) {
  // Path graph: every multi-hop source has an irreplaceable relay.
  const auto g = graph::make_path(5, 1.0);
  const OverpaymentResult study = overpayment_node_model(g, 0);
  EXPECT_GT(study.metrics.monopoly_sources, 0u);
  for (const auto& s : study.per_source) {
    EXPECT_FALSE(std::isinf(s.payment));
  }
}

TEST(Overpayment, RingExactRatios) {
  // 6-ring, unit costs, AP = 0. Both halves tie, so every relay is paid
  // exactly its cost and the opposite node's ratio is 1 (no overpayment).
  const auto g = graph::make_ring(6, 1.0);
  const OverpaymentResult study = overpayment_node_model(g, 0);
  bool saw_opposite = false;
  for (const auto& s : study.per_source) {
    if (s.source == 3) {
      saw_opposite = true;
      EXPECT_DOUBLE_EQ(s.payment, 2.0);
      EXPECT_DOUBLE_EQ(s.lcp_cost, 2.0);
    }
  }
  EXPECT_TRUE(saw_opposite);
}

TEST(Overpayment, SummarizeHandlesEmpty) {
  const OverpaymentMetrics m = summarize_overpayment({}, 2, 3);
  EXPECT_EQ(m.sources_counted, 0u);
  EXPECT_EQ(m.monopoly_sources, 2u);
  EXPECT_EQ(m.sources_skipped, 3u);
  EXPECT_EQ(m.tor, 0.0);
}

TEST(Overpayment, BucketByHopsAggregates) {
  std::vector<SourceOverpayment> sources;
  sources.push_back({1, 4.0, 2.0, 2});   // ratio 2
  sources.push_back({2, 6.0, 2.0, 2});   // ratio 3
  sources.push_back({3, 5.0, 5.0, 3});   // ratio 1
  sources.push_back({4, 0.0, 0.0, 1});   // undefined, skipped
  const auto buckets = bucket_by_hops(sources);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].hops, 2u);
  EXPECT_DOUBLE_EQ(buckets[0].mean_ratio, 2.5);
  EXPECT_DOUBLE_EQ(buckets[0].max_ratio, 3.0);
  EXPECT_EQ(buckets[0].count, 2u);
  EXPECT_EQ(buckets[1].hops, 3u);
  EXPECT_DOUBLE_EQ(buckets[1].mean_ratio, 1.0);
}

TEST(Overpayment, LinkModelUdgRatiosSane) {
  graph::UdgParams params;
  params.n = 100;
  params.range_m = 300.0;
  const auto g = graph::make_unit_disk_link(params, 17);
  const OverpaymentResult study = overpayment_link_model(g, 0);
  if (study.metrics.sources_counted < 10) GTEST_SKIP();
  EXPECT_GE(study.metrics.tor, 1.0);
  EXPECT_LT(study.metrics.tor, 10.0);  // gross sanity: no runaway ratios
  EXPECT_GE(study.metrics.ior, 1.0);
  EXPECT_LT(study.metrics.ior, 10.0);
}

}  // namespace
}  // namespace tc::core
