#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"

namespace tc::graph {
namespace {

TEST(GraphIo, TextRoundTrip) {
  const NodeGraph g = make_fig4_graph();
  std::stringstream buffer;
  write_text(buffer, g);
  const NodeGraph h = read_text(buffer);
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(h.node_cost(v), g.node_cost(v));
  }
  EXPECT_EQ(h.edges(), g.edges());
}

TEST(GraphIo, CostPrecisionPreserved) {
  NodeGraphBuilder b(2);
  b.set_node_cost(0, 1.0 / 3.0).add_edge(0, 1);
  std::stringstream buffer;
  write_text(buffer, b.build());
  const NodeGraph h = read_text(buffer);
  EXPECT_DOUBLE_EQ(h.node_cost(0), 1.0 / 3.0);
}

TEST(GraphIo, RejectsMissingHeader) {
  std::stringstream buffer("garbage 3\n");
  EXPECT_THROW(read_text(buffer), std::invalid_argument);
}

TEST(GraphIo, RejectsUnknownRecord) {
  std::stringstream buffer("node_graph 2\nz 0 1\n");
  EXPECT_THROW(read_text(buffer), std::invalid_argument);
}

TEST(GraphIo, DotContainsNodesAndEdges) {
  const std::string dot = to_dot(make_path(3, 1.5));
  EXPECT_NE(dot.find("graph truthcast"), std::string::npos);
  EXPECT_NE(dot.find("v0 -- v1"), std::string::npos);
  EXPECT_NE(dot.find("c=1.5"), std::string::npos);
}

TEST(GraphIo, DotDirectedForLinkGraph) {
  LinkGraphBuilder b(2);
  b.add_arc(0, 1, 2.5);
  const std::string dot = to_dot(b.build());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
  EXPECT_NE(dot.find("2.5"), std::string::npos);
}

}  // namespace
}  // namespace tc::graph
