// Seeded violation: a payment-typed return without [[nodiscard]].
#pragma once

struct PaymentResult {
  double total = 0.0;
};

PaymentResult quote_payment();
