// Seeded violation: a new use of the retired RouteQuote alias.
struct RouteQuote {};

RouteQuote make_legacy_quote() { return RouteQuote{}; }
