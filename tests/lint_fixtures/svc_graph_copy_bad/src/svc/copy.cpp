// Seeded violation: a full graph copy on the serving path.
namespace graph {
struct NodeGraph {};
}  // namespace graph

struct Snap {
  graph::NodeGraph g;
  const graph::NodeGraph& node() const { return g; }
};

double price(const Snap& snap) {
  graph::NodeGraph copy = snap.node();
  (void)copy;
  return 0.0;
}
