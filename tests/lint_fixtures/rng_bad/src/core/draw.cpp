// Seeded violation: a raw std engine instead of tc::util::Rng streams.
#include <random>

int draw() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}
