// Seeded violation: a protocol layer rolling its own delivery dice
// instead of drawing through src/distsim/net's seeded stream.
bool bernoulli(double p);

bool deliver(double loss) { return !bernoulli(loss); }
