// Seeded violation: an #ifndef include guard instead of #pragma once.
#ifndef CORE_GUARD_HPP
#define CORE_GUARD_HPP
inline int guarded() { return 1; }
#endif
