// Same copy as svc_graph_copy_bad, but sanctioned by an allow comment.
namespace graph {
struct NodeGraph {};
}  // namespace graph

struct Snap {
  graph::NodeGraph g;
  const graph::NodeGraph& node() const { return g; }
};

double price(const Snap& snap) {
  // tc-lint: allow(svc-graph-copy) fixture-sanctioned cold copy
  graph::NodeGraph copy = snap.node();
  (void)copy;
  return 0.0;
}
