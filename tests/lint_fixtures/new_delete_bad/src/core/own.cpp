// Seeded violation: naked new/delete ownership.
int own() {
  int* p = new int(7);
  int v = *p;
  delete p;
  return v;
}
