// Seeded violation: an allocating Dijkstra inside a loop (the workspace
// kernels exist so repeated solves reuse arrays).
namespace spath {
struct SptResult {};
SptResult dijkstra_node(int g, int s);
}  // namespace spath

void resolve_all(int g, int n) {
  for (int s = 0; s < n; ++s) {
    spath::SptResult r = spath::dijkstra_node(g, s);
    (void)r;
  }
}
