// Banned spellings inside comments and string literals must NOT fire:
// the linter strips them first. E.g. "new int" or std::mt19937 here.
const char* describe() {
  return "uses new int, delete p, std::mt19937, float, RouteQuote";
}
