// Seeded violation: an adversary schedule rolling its own drop dice
// instead of deriving every decision from seeded util::mix64 hashes of
// the FaultSchedule seed (the determinism contract for hostile runs).
bool bernoulli(double p);

bool drops_data(double rate) { return bernoulli(rate); }
