// Seeded violation: float in the payment arithmetic layer.
double narrow(double payment) {
  float f = static_cast<float>(payment);
  return f;
}
