#include "distsim/payment_protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/vcg_unicast.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace tc::distsim {
namespace {

using graph::Cost;
using graph::NodeId;

// Compares the converged distributed entries p_i^k against centralized VCG
// payments computed per source.
void expect_matches_centralized(const graph::NodeGraph& g, NodeId root,
                                const PaymentOutcome& out,
                                const std::string& context) {
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    if (i == root) continue;
    const auto central = core::vcg_payments_naive(g, i, root);
    if (!central.connected()) continue;
    Cost central_total = 0.0;
    bool central_monopoly = false;
    for (std::size_t idx = 1; idx + 1 < central.path.size(); ++idx) {
      const NodeId k = central.path[idx];
      if (std::isinf(central.payments[k])) central_monopoly = true;
      central_total += central.payments[k];
      const auto it = out.payments[i].find(k);
      ASSERT_NE(it, out.payments[i].end())
          << context << " source " << i << " missing relay " << k;
      if (std::isinf(central.payments[k])) {
        EXPECT_TRUE(std::isinf(it->second)) << context;
      } else {
        EXPECT_NEAR(it->second, central.payments[k], 1e-6)
            << context << " source " << i << " relay " << k;
      }
    }
    if (!central_monopoly) {
      EXPECT_NEAR(out.total_payment(i), central_total, 1e-6)
          << context << " source " << i;
    }
  }
}

TEST(PaymentProtocol, MatchesCentralizedOnFig2) {
  const auto g = graph::make_fig2_graph();
  const auto spt = exact_spt(g, 0);
  const auto out =
      run_payment_protocol(g, 0, g.costs(), spt, PaymentMode::kBasic);
  EXPECT_TRUE(out.converged);
  expect_matches_centralized(g, 0, out, "fig2");
  EXPECT_DOUBLE_EQ(out.total_payment(1), 6.0);
}

TEST(PaymentProtocol, MatchesCentralizedOnFig4) {
  const auto g = graph::make_fig4_graph();
  const auto spt = exact_spt(g, 0);
  const auto out =
      run_payment_protocol(g, 0, g.costs(), spt, PaymentMode::kBasic);
  EXPECT_TRUE(out.converged);
  expect_matches_centralized(g, 0, out, "fig4");
  EXPECT_DOUBLE_EQ(out.total_payment(8), 20.0);
  EXPECT_DOUBLE_EQ(out.total_payment(4), 6.0);
}

TEST(PaymentProtocol, MatchesCentralizedOnRandomGraphs) {
  int tested = 0;
  for (std::uint64_t seed = 1; seed <= 20 && tested < 8; ++seed) {
    const auto g = graph::make_erdos_renyi(16, 0.3, 0.5, 5.0, seed);
    if (!graph::is_connected(g)) continue;
    const auto spt = exact_spt(g, 0);
    const auto out =
        run_payment_protocol(g, 0, g.costs(), spt, PaymentMode::kBasic);
    EXPECT_TRUE(out.converged) << "seed " << seed;
    expect_matches_centralized(g, 0, out, "seed " + std::to_string(seed));
    ++tested;
  }
  EXPECT_GE(tested, 6);
}

TEST(PaymentProtocol, WorksOnDistributedStage1Too) {
  const auto g = graph::make_erdos_renyi(14, 0.35, 0.5, 5.0, 9);
  ASSERT_TRUE(graph::is_connected(g));
  const auto spt =
      run_spt_protocol(g, 0, g.costs(), SptMode::kBasic);
  ASSERT_TRUE(spt.converged);
  const auto out =
      run_payment_protocol(g, 0, g.costs(), spt, PaymentMode::kBasic);
  EXPECT_TRUE(out.converged);
  expect_matches_centralized(g, 0, out, "dist-stage1");
}

TEST(PaymentProtocol, ConvergesWithinLinearRounds) {
  const auto g = graph::make_ring(20, 1.0);
  const auto spt = exact_spt(g, 0);
  const auto out =
      run_payment_protocol(g, 0, g.costs(), spt, PaymentMode::kBasic);
  EXPECT_TRUE(out.converged);
  EXPECT_LE(out.stats.rounds, 2 * 20 + 2u);
}

TEST(PaymentProtocol, MonopolyEntriesStayInfinite) {
  const auto g = graph::make_path(5, 1.0);
  const auto spt = exact_spt(g, 0);
  const auto out =
      run_payment_protocol(g, 0, g.costs(), spt, PaymentMode::kBasic);
  EXPECT_TRUE(out.converged);
  EXPECT_TRUE(std::isinf(out.total_payment(4)));
}

TEST(PaymentProtocol, OneHopSourcesHaveNoEntries) {
  const auto g = graph::make_ring(6, 1.0);
  const auto spt = exact_spt(g, 0);
  const auto out =
      run_payment_protocol(g, 0, g.costs(), spt, PaymentMode::kBasic);
  EXPECT_TRUE(out.payments[1].empty());
  EXPECT_DOUBLE_EQ(out.total_payment(1), 0.0);
}

TEST(PaymentProtocol, UnderstatingLiarUndetectedInBasicMode) {
  const auto g = graph::make_fig4_graph();
  const auto spt = exact_spt(g, 0);
  std::vector<PaymentBehavior> behaviors(g.num_nodes());
  behaviors[8].broadcast_scale = 0.5;  // v8 reports half of what it owes
  const auto out = run_payment_protocol(g, 0, g.costs(), spt,
                                        PaymentMode::kBasic, behaviors);
  EXPECT_TRUE(out.stats.clean());
  EXPECT_NEAR(out.total_payment(8), 10.0, 1e-6);  // the lie sticks
}

TEST(PaymentProtocol, UnderstatingLiarCaughtInVerifiedMode) {
  const auto g = graph::make_fig4_graph();
  const auto spt = exact_spt(g, 0);
  std::vector<PaymentBehavior> behaviors(g.num_nodes());
  behaviors[8].broadcast_scale = 0.5;
  const auto out = run_payment_protocol(g, 0, g.costs(), spt,
                                        PaymentMode::kVerified, behaviors);
  ASSERT_FALSE(out.stats.accusations.empty());
  EXPECT_EQ(out.stats.accusations[0].accused, 8u);
  // After punishment + rerun, payments are correct again.
  EXPECT_NEAR(out.total_payment(8), 20.0, 1e-6);
  expect_matches_centralized(g, 0, out, "verified-liar");
}

TEST(PaymentProtocol, OverstatingLiarAlsoCaught) {
  const auto g = graph::make_fig4_graph();
  const auto spt = exact_spt(g, 0);
  std::vector<PaymentBehavior> behaviors(g.num_nodes());
  behaviors[1].broadcast_scale = 3.0;  // inflates entries others consume
  const auto out = run_payment_protocol(g, 0, g.costs(), spt,
                                        PaymentMode::kVerified, behaviors);
  ASSERT_FALSE(out.stats.accusations.empty());
  EXPECT_EQ(out.stats.accusations[0].accused, 1u);
  expect_matches_centralized(g, 0, out, "verified-overstater");
}

TEST(PaymentProtocol, VerifiedModeQuietOnHonestNetwork) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = graph::make_erdos_renyi(14, 0.35, 0.5, 5.0, seed);
    if (!graph::is_connected(g)) continue;
    const auto spt = exact_spt(g, 0);
    const auto out = run_payment_protocol(g, 0, g.costs(), spt,
                                          PaymentMode::kVerified);
    EXPECT_TRUE(out.stats.clean()) << "seed " << seed;
    expect_matches_centralized(g, 0, out,
                               "verified-honest seed " + std::to_string(seed));
  }
}

TEST(PaymentProtocol, AsynchronousScheduleSameFixpoint) {
  // Min-updates commute, so delayed broadcasts change the round count but
  // not the converged payments.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = graph::make_erdos_renyi(16, 0.3, 0.5, 5.0, seed);
    if (!graph::is_connected(g)) continue;
    const auto spt = exact_spt(g, 0);
    const auto sync =
        run_payment_protocol(g, 0, g.costs(), spt, PaymentMode::kBasic);
    for (const double p : {0.7, 0.3}) {
      PaymentSchedule schedule;
      schedule.activation_probability = p;
      schedule.seed = seed * 31;
      const auto async = run_payment_protocol(g, 0, g.costs(), spt,
                                              PaymentMode::kBasic, {}, 0,
                                              schedule);
      ASSERT_TRUE(async.converged) << "seed " << seed << " p " << p;
      EXPECT_GE(async.stats.rounds, sync.stats.rounds);
      for (NodeId i = 0; i < g.num_nodes(); ++i) {
        ASSERT_EQ(async.payments[i].size(), sync.payments[i].size());
        for (const auto& [k, v] : sync.payments[i]) {
          if (std::isinf(v)) {
            EXPECT_TRUE(std::isinf(async.payments[i].at(k)));
          } else {
            EXPECT_NEAR(async.payments[i].at(k), v, 1e-9)
                << "seed " << seed << " p " << p << " i " << i << " k " << k;
          }
        }
      }
    }
  }
}

TEST(PaymentProtocol, LossyDeliveryConvergesToSameFixpoint) {
  // Radio loss drops individual broadcast copies; the reliable channel
  // retransmits them, so the converged payments match the lossless run.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto g = graph::make_erdos_renyi(14, 0.35, 0.5, 5.0, seed);
    if (!graph::is_connected(g)) continue;
    const auto spt = exact_spt(g, 0);
    const auto reliable =
        run_payment_protocol(g, 0, g.costs(), spt, PaymentMode::kBasic);
    PaymentSchedule schedule;
    schedule.delivery_probability = 0.7;
    schedule.seed = seed * 13;
    const auto lossy = run_payment_protocol(g, 0, g.costs(), spt,
                                            PaymentMode::kBasic, {}, 0,
                                            schedule);
    ASSERT_TRUE(lossy.converged) << "seed " << seed;
    EXPECT_GE(lossy.stats.broadcasts, reliable.stats.broadcasts);
    for (NodeId i = 0; i < g.num_nodes(); ++i) {
      for (const auto& [k, v] : reliable.payments[i]) {
        if (std::isinf(v)) {
          EXPECT_TRUE(std::isinf(lossy.payments[i].at(k)));
        } else {
          EXPECT_NEAR(lossy.payments[i].at(k), v, 1e-9)
              << "seed " << seed << " i " << i << " k " << k;
        }
      }
    }
  }
}

TEST(PaymentProtocol, LossyDeliveryVerifiedModeConverges) {
  // Verified mode used to be incompatible with loss (a dropped broadcast
  // looked like a withheld one). The reliable channel separates radio
  // loss from protocol misbehavior: every accepted send is eventually
  // delivered, so the cross-checks see complete transcripts and no honest
  // node is ever accused — even at 50% per-copy loss.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto g = graph::make_erdos_renyi(12, 0.4, 0.5, 5.0, seed);
    if (!graph::is_connected(g)) continue;
    const auto spt = exact_spt(g, 0);
    const auto reliable =
        run_payment_protocol(g, 0, g.costs(), spt, PaymentMode::kVerified);
    PaymentSchedule schedule;
    schedule.delivery_probability = 0.5;
    schedule.seed = seed * 29;
    const auto lossy = run_payment_protocol(g, 0, g.costs(), spt,
                                            PaymentMode::kVerified, {}, 0,
                                            schedule);
    ASSERT_TRUE(lossy.converged) << "seed " << seed;
    EXPECT_TRUE(lossy.stats.accusations.empty()) << "seed " << seed;
    EXPECT_GT(lossy.stats.net.channel.retransmissions, 0u) << "seed " << seed;
    for (NodeId i = 0; i < g.num_nodes(); ++i) {
      ASSERT_EQ(lossy.payments[i].size(), reliable.payments[i].size());
      for (const auto& [k, v] : reliable.payments[i]) {
        if (std::isinf(v)) {
          EXPECT_TRUE(std::isinf(lossy.payments[i].at(k)));
        } else {
          EXPECT_NEAR(lossy.payments[i].at(k), v, 1e-9)
              << "seed " << seed << " i " << i << " k " << k;
        }
      }
    }
  }
}

TEST(PaymentProtocol, TwoLiarsBothCaught) {
  const auto g = graph::make_fig4_graph();
  const auto spt = exact_spt(g, 0);
  std::vector<PaymentBehavior> behaviors(g.num_nodes());
  behaviors[8].broadcast_scale = 0.5;
  behaviors[4].broadcast_scale = 0.7;
  const auto out = run_payment_protocol(g, 0, g.costs(), spt,
                                        PaymentMode::kVerified, behaviors);
  EXPECT_GE(out.stats.accusations.size(), 2u);
  expect_matches_centralized(g, 0, out, "two-liars");
}

}  // namespace
}  // namespace tc::distsim
