// Tests for the mechanism invariant auditors (mech/invariants.hpp): every
// seed payment output must be accepted, every deliberately corrupted
// profile must be rejected with the right violation, and a non-VCG
// "pay your bid" mechanism must fail the bid-independence spot check.
//
// Also contains the ThreadSanitizer-targeted stress tests for
// util::ThreadPool::parallel_for with shared accumulators.
#include "mech/invariants.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <vector>

#include "core/audit_hooks.hpp"
#include "core/fast_link_payment.hpp"
#include "core/fast_payment.hpp"
#include "core/link_vcg.hpp"
#include "core/vcg_unicast.hpp"
#include "graph/generators.hpp"
#include "spath/dijkstra.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace tc::mech {
namespace {

using core::internal::to_outcome;
using graph::Cost;
using graph::NodeId;

// gmock is not available in this toolchain, so substring matching on the
// audit report is done with a plain gtest assertion helper.
::testing::AssertionResult mentions(const AuditReport& report,
                                    const std::string& needle) {
  const std::string text = report.to_string();
  if (text.find(needle) != std::string::npos) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "expected a violation mentioning \"" << needle
         << "\", report was: " << text;
}

// Full-strength audit configuration: every self-contained check plus
// naive-reference agreement and bid-independence perturbation.
AuditOptions full_options(const UnicastMechanism& mechanism,
                          const UnicastMechanism& reference) {
  AuditOptions options;
  options.mechanism = &mechanism;
  options.reference = &reference;
  options.perturbation_trials = 6;
  return options;
}

// ---------------------------------------------------------------------------
// Node-weighted model: seed outputs must pass.
// ---------------------------------------------------------------------------

TEST(UnicastAudit, AcceptsFig2FastEngine) {
  const auto g = graph::make_fig2_graph();
  const core::VcgUnicastMechanism fast(core::PaymentEngine::kFast);
  const core::VcgUnicastMechanism naive(core::PaymentEngine::kNaive);
  const auto outcome = to_outcome(core::vcg_payments_fast(g, 1, 0));
  const AuditReport report =
      audit_unicast_payment(g, 1, 0, outcome, full_options(fast, naive));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(UnicastAudit, AcceptsFig4BothEngines) {
  const auto g = graph::make_fig4_graph();
  const core::VcgUnicastMechanism fast(core::PaymentEngine::kFast);
  const core::VcgUnicastMechanism naive(core::PaymentEngine::kNaive);
  for (const auto* engine : {&fast, &naive}) {
    const auto outcome = to_outcome(engine == &fast
                                        ? core::vcg_payments_fast(g, 8, 0)
                                        : core::vcg_payments_naive(g, 8, 0));
    const AuditReport report =
        audit_unicast_payment(g, 8, 0, outcome, full_options(fast, naive));
    EXPECT_TRUE(report.ok()) << engine->name() << ": " << report.to_string();
  }
}

TEST(UnicastAudit, AcceptsRandomInstances) {
  const core::VcgUnicastMechanism fast(core::PaymentEngine::kFast);
  const core::VcgUnicastMechanism naive(core::PaymentEngine::kNaive);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto g = graph::make_erdos_renyi(24, 0.2, 0.3, 6.0, seed);
    const auto outcome = to_outcome(core::vcg_payments_fast(g, 1, 0));
    const AuditReport report =
        audit_unicast_payment(g, 1, 0, outcome, full_options(fast, naive));
    EXPECT_TRUE(report.ok())
        << "seed " << seed << ": " << report.to_string();
  }
}

TEST(UnicastAudit, AcceptsDisconnectedOutcome) {
  graph::NodeGraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  const auto g = b.build();
  const auto outcome = to_outcome(core::vcg_payments_fast(g, 0, 3));
  const AuditReport report = audit_unicast_payment(g, 0, 3, outcome);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(UnicastAudit, AcceptsMonopolyInfinitePayments) {
  // On a path graph every relay is a monopoly; infinite payments are the
  // correct output and must be accepted.
  const auto g = graph::make_path(5, 1.0);
  const auto outcome = to_outcome(core::vcg_payments_fast(g, 0, 4));
  const AuditReport report = audit_unicast_payment(g, 0, 4, outcome);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// ---------------------------------------------------------------------------
// Node-weighted model: corrupted profiles must be rejected.
// ---------------------------------------------------------------------------

class CorruptedFig2 : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = graph::make_fig2_graph();
    outcome_ = to_outcome(core::vcg_payments_fast(g_, 1, 0));
    ASSERT_FALSE(outcome_.path.empty());
  }

  graph::NodeGraph g_ = graph::make_fig2_graph();
  UnicastOutcome outcome_;
};

TEST_F(CorruptedFig2, RejectsPaymentBelowDeclaredCost) {
  const NodeId relay = outcome_.path[1];
  outcome_.payments[relay] = g_.node_cost(relay) - 0.5;
  const AuditReport report = audit_unicast_payment(g_, 1, 0, outcome_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "IR violation"));
}

TEST_F(CorruptedFig2, RejectsNegativePayment) {
  outcome_.payments[outcome_.path[1]] = -1.0;
  const AuditReport report = audit_unicast_payment(g_, 1, 0, outcome_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "negative"));
}

TEST_F(CorruptedFig2, RejectsOffPathPayment) {
  // Node 5 is off the truthful LCP v1-v4-v3-v2-v0.
  ASSERT_FALSE(outcome_.is_relay(5));
  outcome_.payments[5] = 1.0;
  const AuditReport report = audit_unicast_payment(g_, 1, 0, outcome_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "off-path"));
}

TEST_F(CorruptedFig2, RejectsInflatedPathCost) {
  outcome_.path_cost += 1.0;
  const AuditReport report = audit_unicast_payment(g_, 1, 0, outcome_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "path_cost"));
}

TEST_F(CorruptedFig2, RejectsOverpaymentAgainstReference) {
  // +1 on one relay keeps IR and structure intact; only the agreement
  // check against the independent naive recomputation catches it.
  const core::VcgUnicastMechanism naive(core::PaymentEngine::kNaive);
  outcome_.payments[outcome_.path[1]] += 1.0;
  AuditOptions options;
  options.reference = &naive;
  const AuditReport report = audit_unicast_payment(g_, 1, 0, outcome_, options);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "reference engine"));
}

TEST_F(CorruptedFig2, RejectsFakeMonopolyInfinity) {
  // Fig. 2 is biconnected: no relay is a monopoly, so an infinite payment
  // must be flagged as inconsistent.
  outcome_.payments[outcome_.path[1]] = graph::kInfCost;
  const AuditReport report = audit_unicast_payment(g_, 1, 0, outcome_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "monopoly"));
}

TEST_F(CorruptedFig2, RejectsWrongSizePaymentVector) {
  outcome_.payments.pop_back();
  const AuditReport report = audit_unicast_payment(g_, 1, 0, outcome_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "entries"));
}

TEST_F(CorruptedFig2, RejectsNonExistentPathEdge) {
  // Splice node 5 into the middle of the path; v5 is not adjacent to the
  // spliced neighbors, so the path is structurally invalid.
  outcome_.path.insert(outcome_.path.begin() + 2, 5);
  const AuditReport report = audit_unicast_payment(g_, 1, 0, outcome_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "does not exist"));
}

TEST_F(CorruptedFig2, RejectsNonOptimalPath) {
  // Reroute over the expensive detour v1-v5-v0 (cost 5 > 4... actually
  // the truthful LCP costs 6 in payments but 4 in declared relay cost);
  // hand the auditor a valid-but-suboptimal path with self-consistent
  // cost and payments: least-cost check must fire.
  UnicastOutcome detour;
  detour.path = {1, 5, 0};
  detour.path_cost = g_.node_cost(5);
  detour.payments.assign(g_.num_nodes(), 0.0);
  detour.payments[5] = g_.node_cost(5) + 1.0;
  const AuditReport report = audit_unicast_payment(g_, 1, 0, detour);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "least-cost"));
}

// ---------------------------------------------------------------------------
// Bid independence: a pay-your-bid mechanism must be caught.
// ---------------------------------------------------------------------------

// First-price ("pay your bid") routing: routes on the LCP but pays each
// relay exactly its declaration. IR holds with equality, off-path nodes
// get zero, the path is least-cost — every static check passes. It is
// nevertheless manipulable, and the perturbation audit must expose that
// a relay's payment tracks its own bid.
class PayYourBidMechanism final : public UnicastMechanism {
 public:
  [[nodiscard]] UnicastOutcome run(
      const graph::NodeGraph& g, NodeId source, NodeId target,
      const std::vector<Cost>& declared) const override {
    graph::NodeGraph work = g;
    work.set_costs(declared);
    UnicastOutcome out;
    out.payments.assign(g.num_nodes(), 0.0);
    const spath::SptResult spt = spath::dijkstra_node(work, source);
    if (!spt.reached(target)) return out;
    out.path = spt.path_to(target);
    out.path_cost = spt.dist[target];
    for (std::size_t i = 1; i + 1 < out.path.size(); ++i) {
      out.payments[out.path[i]] = declared[out.path[i]];
    }
    return out;
  }

  [[nodiscard]] std::string name() const override { return "pay-your-bid"; }
};

TEST(UnicastAudit, PerturbationCatchesPayYourBid) {
  const auto g = graph::make_fig2_graph();
  const PayYourBidMechanism first_price;
  const auto outcome = first_price.run(g, 1, 0, g.costs());

  AuditOptions static_only;  // without perturbation everything passes
  EXPECT_TRUE(audit_unicast_payment(g, 1, 0, outcome, static_only).ok());

  AuditOptions with_perturbation;
  with_perturbation.mechanism = &first_price;
  with_perturbation.perturbation_trials = 6;
  const AuditReport report =
      audit_unicast_payment(g, 1, 0, outcome, with_perturbation);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "bid independence"));
}

TEST(UnicastAudit, PerturbationAcceptsTruthfulVcg) {
  const core::VcgUnicastMechanism fast(core::PaymentEngine::kFast);
  for (std::uint64_t seed = 3; seed <= 8; ++seed) {
    const auto g = graph::make_erdos_renyi(20, 0.25, 0.5, 5.0, seed);
    const auto outcome = to_outcome(core::vcg_payments_fast(g, 1, 0));
    AuditOptions options;
    options.mechanism = &fast;
    options.perturbation_trials = 10;
    options.perturbation_seed = seed;
    const AuditReport report =
        audit_unicast_payment(g, 1, 0, outcome, options);
    EXPECT_TRUE(report.ok())
        << "seed " << seed << ": " << report.to_string();
  }
}

// ---------------------------------------------------------------------------
// Link-weighted model.
// ---------------------------------------------------------------------------

graph::LinkGraph make_symmetric_square() {
  // 0 -1- 1 -1- 2 -1- 3 with chords 0-2 (2.5) and 1-3 (2.5): LCP 0-1-2-3,
  // relays 1 and 2 each paid 1 + 3.5 - 3 = 1.5.
  graph::LinkGraphBuilder b(4);
  b.add_link(0, 1, 1.0, 1.0)
      .add_link(1, 2, 1.0, 1.0)
      .add_link(2, 3, 1.0, 1.0)
      .add_link(0, 2, 2.5, 2.5)
      .add_link(1, 3, 2.5, 2.5);
  return b.build();
}

LinkAuditOptions full_link_options() {
  LinkAuditOptions options;
  options.engine = [](const graph::LinkGraph& g, NodeId s, NodeId t) {
    return to_outcome(core::fast_link_payments(g, s, t));
  };
  options.reference = [](const graph::LinkGraph& g, NodeId s, NodeId t) {
    return to_outcome(core::link_vcg_payments(g, s, t));
  };
  options.perturbation_trials = 6;
  return options;
}

TEST(LinkAudit, AcceptsSymmetricSquareBothEngines) {
  const auto g = make_symmetric_square();
  const auto fast = to_outcome(core::fast_link_payments(g, 0, 3));
  const auto naive = to_outcome(core::link_vcg_payments(g, 0, 3));
  for (const auto& outcome : {fast, naive}) {
    const AuditReport report =
        audit_link_payment(g, 0, 3, outcome, full_link_options());
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(LinkAudit, AcceptsRandomUnitDiskInstances) {
  graph::UdgParams params;
  params.n = 40;
  params.region = {800.0, 800.0};
  params.range_m = 250.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = graph::make_unit_disk_link(params, seed);
    const auto outcome = to_outcome(core::fast_link_payments(g, 1, 0));
    const AuditReport report =
        audit_link_payment(g, 1, 0, outcome, full_link_options());
    EXPECT_TRUE(report.ok())
        << "seed " << seed << ": " << report.to_string();
  }
}

TEST(LinkAudit, AcceptsAsymmetricNaiveEngine) {
  graph::LinkGraphBuilder b(4);
  b.add_link(0, 1, 1.0, 2.0)
      .add_link(1, 2, 1.5, 0.5)
      .add_link(2, 3, 1.0, 3.0)
      .add_link(0, 2, 4.0, 4.0)
      .add_link(1, 3, 4.0, 4.0);
  const auto g = b.build();
  const auto outcome = to_outcome(core::link_vcg_payments(g, 0, 3));
  LinkAuditOptions options;
  options.engine = [](const graph::LinkGraph& gr, NodeId s, NodeId t) {
    return to_outcome(core::link_vcg_payments(gr, s, t));
  };
  options.perturbation_trials = 4;
  const AuditReport report = audit_link_payment(g, 0, 3, outcome, options);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(LinkAudit, RejectsPaymentBelowOwnArcCost) {
  const auto g = make_symmetric_square();
  auto outcome = to_outcome(core::fast_link_payments(g, 0, 3));
  outcome.payments[1] = 0.25;  // own forwarding arc costs 1.0
  const AuditReport report = audit_link_payment(g, 0, 3, outcome);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "IR violation"));
}

TEST(LinkAudit, RejectsOffPathPayment) {
  const auto g = make_symmetric_square();
  auto outcome = to_outcome(core::fast_link_payments(g, 0, 2));
  ASSERT_FALSE(outcome.is_relay(3));
  outcome.payments[3] = 0.75;
  const AuditReport report = audit_link_payment(g, 0, 2, outcome);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "off-path"));
}

TEST(LinkAudit, RejectsDisagreementWithReference) {
  const auto g = make_symmetric_square();
  auto outcome = to_outcome(core::fast_link_payments(g, 0, 3));
  outcome.payments[2] += 0.5;
  const AuditReport report =
      audit_link_payment(g, 0, 3, outcome, full_link_options());
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "reference engine"));
}

TEST(LinkAudit, RejectsFakeMonopolyInfinity) {
  const auto g = make_symmetric_square();
  auto outcome = to_outcome(core::fast_link_payments(g, 0, 3));
  outcome.payments[1] = graph::kInfCost;
  const AuditReport report = audit_link_payment(g, 0, 3, outcome);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "monopoly"));
}

// ---------------------------------------------------------------------------
// ThreadSanitizer-targeted stress: parallel_for with shared accumulators.
// ---------------------------------------------------------------------------

TEST(ParallelForStress, SharedAccumulatorsAreRaceFree) {
  util::ThreadPool pool(4);
  constexpr std::size_t kIters = 20000;

  std::atomic<std::int64_t> atomic_sum{0};
  std::vector<double> per_index(kIters, 0.0);
  double locked_sum = 0.0;
  std::mutex sum_mutex;

  pool.parallel_for(0, kIters, [&](std::size_t i) {
    atomic_sum.fetch_add(static_cast<std::int64_t>(i),
                         std::memory_order_relaxed);
    per_index[i] = static_cast<double>(i) * 0.5;  // disjoint writes
    double local = static_cast<double>(i % 7);
    {
      std::lock_guard<std::mutex> lock(sum_mutex);
      locked_sum += local;
    }
  });

  const auto expected =
      static_cast<std::int64_t>(kIters) * (kIters - 1) / 2;
  EXPECT_EQ(atomic_sum.load(), expected);
  double expected_locked = 0.0;
  for (std::size_t i = 0; i < kIters; ++i) {
    expected_locked += static_cast<double>(i % 7);
  }
  EXPECT_DOUBLE_EQ(locked_sum, expected_locked);
  for (std::size_t i = 0; i < kIters; i += 997) {
    EXPECT_DOUBLE_EQ(per_index[i], static_cast<double>(i) * 0.5);
  }
}

TEST(ParallelForStress, ConcurrentPaymentEnginesShareConstGraph) {
  // The engines must be pure functions of a const graph: many threads
  // computing payments off one shared instance is exactly the production
  // serving pattern, and TSan verifies no hidden shared mutable state.
  const auto g = graph::make_erdos_renyi(26, 0.22, 0.3, 6.0, 99);
  constexpr std::size_t kRequests = 48;

  std::vector<Cost> parallel_totals(kRequests, 0.0);
  util::ThreadPool pool(4);
  pool.parallel_for(0, kRequests, [&](std::size_t i) {
    const auto s = static_cast<NodeId>(1 + i % (g.num_nodes() - 1));
    const auto r = core::vcg_payments_fast(g, s, 0);
    parallel_totals[i] = r.connected() ? r.total_payment() : -1.0;
  });

  for (std::size_t i = 0; i < kRequests; ++i) {
    const auto s = static_cast<NodeId>(1 + i % (g.num_nodes() - 1));
    const auto r = core::vcg_payments_fast(g, s, 0);
    const Cost expected = r.connected() ? r.total_payment() : -1.0;
    if (std::isinf(expected)) {
      EXPECT_TRUE(std::isinf(parallel_totals[i])) << "request " << i;
    } else {
      EXPECT_DOUBLE_EQ(parallel_totals[i], expected) << "request " << i;
    }
  }
}

}  // namespace
}  // namespace tc::mech
