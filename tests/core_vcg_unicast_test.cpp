#include "core/vcg_unicast.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"

namespace tc::core {
namespace {

using graph::NodeId;

TEST(VcgNaive, Fig2TruthfulPayments) {
  // The paper's Figure 2 numbers: LCP v1-v4-v3-v2-v0 (cost 3), payments
  // to v2, v3, v4 are 2 each, total 6.
  const auto g = graph::make_fig2_graph();
  const PaymentResult r = vcg_payments_naive(g, 1, 0);
  EXPECT_EQ(r.path, (std::vector<NodeId>{1, 4, 3, 2, 0}));
  EXPECT_DOUBLE_EQ(r.path_cost, 3.0);
  EXPECT_DOUBLE_EQ(r.payments[2], 2.0);
  EXPECT_DOUBLE_EQ(r.payments[3], 2.0);
  EXPECT_DOUBLE_EQ(r.payments[4], 2.0);
  EXPECT_DOUBLE_EQ(r.total_payment(), 6.0);
  EXPECT_DOUBLE_EQ(r.payments[5], 0.0);  // off-path nodes earn nothing
  EXPECT_DOUBLE_EQ(r.payments[6], 0.0);
}

TEST(VcgNaive, PaymentAtLeastDeclaredCost) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto g = graph::make_erdos_renyi(25, 0.25, 0.5, 5.0, seed);
    const PaymentResult r = vcg_payments_naive(g, 1, 0);
    if (!r.connected()) continue;
    for (std::size_t i = 1; i + 1 < r.path.size(); ++i) {
      const NodeId k = r.path[i];
      EXPECT_GE(r.payments[k], g.node_cost(k) - 1e-12);
    }
  }
}

TEST(VcgNaive, TwoNodePathNoRelays) {
  graph::NodeGraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
  const PaymentResult r = vcg_payments_naive(b.build(), 0, 2);
  EXPECT_EQ(r.path.size(), 2u);
  EXPECT_DOUBLE_EQ(r.total_payment(), 0.0);
}

TEST(VcgNaive, DisconnectedGraphNoOutput) {
  graph::NodeGraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  const PaymentResult r = vcg_payments_naive(b.build(), 0, 3);
  EXPECT_FALSE(r.connected());
  EXPECT_TRUE(r.path.empty());
}

TEST(VcgNaive, MonopolyRelayInfinitePayment) {
  const auto g = graph::make_path(3, 2.0);
  const PaymentResult r = vcg_payments_naive(g, 0, 2);
  EXPECT_TRUE(std::isinf(r.payments[1]));
}

TEST(VcgNaive, RingPaymentFormula) {
  // 6-ring, unit costs: both halves cost 2, so avoiding any relay on the
  // chosen half costs 2 and each relay is paid exactly its cost:
  // p_k = 2 - 2 + 1 = 1 (zero overpayment under a perfect tie).
  const auto g = graph::make_ring(6);
  const PaymentResult r = vcg_payments_naive(g, 0, 3);
  EXPECT_DOUBLE_EQ(r.path_cost, 2.0);
  for (std::size_t i = 1; i + 1 < r.path.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.payments[r.path[i]], 1.0);
  }
  // An asymmetric 6-cycle (cheap side 1,1; dear side 4,4) has real
  // overpayment: each cheap relay earns the full detour difference.
  const auto h = [] {
    graph::NodeGraphBuilder hb(6);
    hb.set_node_cost(1, 1.0).set_node_cost(2, 1.0);
    hb.set_node_cost(4, 4.0).set_node_cost(5, 4.0);
    hb.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3);
    hb.add_edge(0, 5).add_edge(5, 4).add_edge(4, 3);
    return hb.build();
  }();
  const PaymentResult rh = vcg_payments_naive(h, 0, 3);
  EXPECT_DOUBLE_EQ(rh.path_cost, 2.0);
  // p_k = 8 - 2 + 1 = 7 for both relays.
  EXPECT_DOUBLE_EQ(rh.payments[1], 7.0);
  EXPECT_DOUBLE_EQ(rh.payments[2], 7.0);
}

TEST(VcgNaive, OverpaymentNonNegative) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto g = graph::make_erdos_renyi(30, 0.2, 1.0, 4.0, seed);
    const PaymentResult r = vcg_payments_naive(g, 2, 0);
    if (!r.connected() || std::isinf(r.total_payment())) continue;
    EXPECT_GE(r.overpayment(), -1e-9);
  }
}

TEST(VcgMechanism, AdapterMatchesEngine) {
  const auto g = graph::make_fig2_graph();
  VcgUnicastMechanism naive_mech(PaymentEngine::kNaive);
  VcgUnicastMechanism fast_mech(PaymentEngine::kFast);
  const auto out_naive = naive_mech.run(g, 1, 0, g.costs());
  const auto out_fast = fast_mech.run(g, 1, 0, g.costs());
  EXPECT_EQ(out_naive.path, out_fast.path);
  EXPECT_EQ(out_naive.payments, out_fast.payments);
  EXPECT_DOUBLE_EQ(out_naive.total_payment(), 6.0);
}

TEST(VcgMechanism, DeclaredCostsOverrideStored) {
  auto g = graph::make_ring(6);
  VcgUnicastMechanism mech(PaymentEngine::kNaive);
  std::vector<graph::Cost> declared(6, 1.0);
  declared[1] = 100.0;  // price itself off the 0->3 LCP
  const auto out = mech.run(g, 0, 3, declared);
  EXPECT_EQ(out.path, (std::vector<NodeId>{0, 5, 4, 3}));
  EXPECT_DOUBLE_EQ(out.payments[1], 0.0);
}

TEST(VcgMechanism, NamesDistinguishEngines) {
  EXPECT_NE(VcgUnicastMechanism(PaymentEngine::kNaive).name(),
            VcgUnicastMechanism(PaymentEngine::kFast).name());
}

TEST(UnicastOutcome, RelayDetection) {
  mech::UnicastOutcome out;
  out.path = {3, 1, 2, 0};
  out.payments = {0, 5, 6, 0};
  out.path_cost = 2.0;
  EXPECT_TRUE(out.is_relay(1));
  EXPECT_TRUE(out.is_relay(2));
  EXPECT_FALSE(out.is_relay(3));  // source
  EXPECT_FALSE(out.is_relay(0));  // target
  EXPECT_DOUBLE_EQ(out.total_payment(), 11.0);
}

TEST(UnicastOutcome, UtilityDefinition) {
  mech::UnicastOutcome out;
  out.path = {3, 1, 0};
  out.payments = {0, 5, 0, 0};
  out.path_cost = 1.0;
  EXPECT_DOUBLE_EQ(mech::agent_utility(out, 1, 2.0), 3.0);  // relay: p - c
  EXPECT_DOUBLE_EQ(mech::agent_utility(out, 2, 9.0), 0.0);  // off path: p
}

}  // namespace
}  // namespace tc::core
