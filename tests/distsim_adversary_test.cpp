// Adversarial scenarios across both protocol stages: what each lie buys
// under the basic protocol, and how Algorithm 2 neutralizes it.
#include <gtest/gtest.h>

#include "core/vcg_unicast.hpp"
#include "distsim/session.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace tc::distsim {
namespace {

using graph::Cost;
using graph::NodeId;

TEST(Adversary, CostLiarGainsNothingEvenInBasicMode) {
  // Declared-cost lies are already futile under VCG (that is the
  // mechanism's own guarantee, independent of the protocol hardening):
  // while v1 stays on the LCP, its payment is pinned by the others'
  // declarations.
  const auto g = graph::make_fig4_graph();
  const auto spt_truth = exact_spt(g, 0);
  const auto truthful = run_payment_protocol(g, 0, g.costs(), spt_truth,
                                             PaymentMode::kBasic);
  EXPECT_NEAR(truthful.payments[8].at(1), 7.0, 1e-9);

  auto lied_costs = g.costs();
  lied_costs[1] = 3.0;  // true cost 1.5; LCP stays 3 + 1 + 1 = 5 < 9
  graph::NodeGraph lied_graph = g;
  lied_graph.set_costs(lied_costs);
  const auto spt_lied = exact_spt(lied_graph, 0);
  const auto lied = run_payment_protocol(lied_graph, 0, lied_costs, spt_lied,
                                         PaymentMode::kBasic);
  // Payment to v1 is unchanged: d_1 + (9 - 5) = 7, so utility is too.
  EXPECT_NEAR(lied.payments[8].at(1), 7.0, 1e-9);
}

TEST(Adversary, CostLiarPricesItselfOffRoute) {
  const auto g = graph::make_fig4_graph();
  SessionConfig config;
  auto lied_costs = g.costs();
  lied_costs[1] = 8.0;  // 8 + 1 + 1 = 10 > 9: the v4-v5 route wins
  const SessionResult lied = run_session(g, 0, lied_costs, 8, config);
  EXPECT_EQ(lied.route, (std::vector<NodeId>{8, 4, 5, 0}));
}

TEST(Adversary, DistanceInflationDivertsTrafficInBasicMode) {
  // An inflating relay repels transit traffic (and thus loses income);
  // a deflating one attracts traffic it will be paid for. Either way the
  // verified protocol pins distances to the truth.
  graph::NodeGraphBuilder b(6);
  b.set_node_cost(1, 1.0).set_node_cost(2, 1.0);
  b.set_node_cost(3, 1.5).set_node_cost(4, 1.5);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 5);
  b.add_edge(0, 3).add_edge(3, 4).add_edge(4, 5);
  const auto g = b.build();

  SessionConfig lying;
  lying.spt_behaviors.assign(g.num_nodes(), {});
  // Node 2 (one hop deep: D = 1) inflates its broadcast distance; node 1
  // would be pointless to inflate since D(1) = 0.
  lying.spt_behaviors[2].distance_inflation = 20.0;
  const SessionResult basic = run_session(g, 0, g.costs(), 5, lying);
  EXPECT_EQ(basic.route, (std::vector<NodeId>{5, 4, 3, 0}));

  lying.spt_mode = SptMode::kVerified;
  const SessionResult verified = run_session(g, 0, g.costs(), 5, lying);
  EXPECT_EQ(verified.route, (std::vector<NodeId>{5, 2, 1, 0}));
}

TEST(Adversary, WormholeDeflationCaughtByVerification) {
  // Node 3 claims an impossibly small distance to attract traffic.
  const auto g = graph::make_ring(8, 2.0);
  SessionConfig lying;
  lying.spt_behaviors.assign(g.num_nodes(), {});
  lying.spt_behaviors[3].distance_inflation = 0.05;
  lying.spt_mode = SptMode::kVerified;
  const SessionResult verified = run_session(g, 0, g.costs(), 4, lying);
  EXPECT_GT(verified.spt_stats.direct_contacts, 0u);
  // Distances restored: route cost equals the honest one.
  SessionConfig honest;
  const SessionResult truth = run_session(g, 0, g.costs(), 4, honest);
  EXPECT_DOUBLE_EQ(verified.route_cost, truth.route_cost);
}

TEST(Adversary, CombinedLiarsAllNeutralized) {
  // Stage-1 denier + stage-2 understater, both active, verified protocol.
  const auto g = graph::make_fig2_graph();
  SessionConfig config;
  config.spt_mode = SptMode::kVerified;
  config.payment_mode = PaymentMode::kVerified;
  config.spt_behaviors.assign(g.num_nodes(), {});
  config.spt_behaviors[1].denied_neighbor = 4;
  config.payment_behaviors.assign(g.num_nodes(), {});
  config.payment_behaviors[1].broadcast_scale = 0.25;
  const SessionResult session = run_session(g, 0, g.costs(), 1, config);
  EXPECT_TRUE(session.cheating_detected());
  EXPECT_DOUBLE_EQ(session.total_payment, 6.0);
}

TEST(Adversary, HonestMajorityUnaffectedByOneLiar) {
  // Other sources' payments stay correct even while one node lies about
  // its own (the lie only distorts the liar's own reporting).
  const auto g = graph::make_fig4_graph();
  const auto spt = exact_spt(g, 0);
  std::vector<PaymentBehavior> behaviors(g.num_nodes());
  behaviors[8].broadcast_scale = 0.5;
  const auto out = run_payment_protocol(g, 0, g.costs(), spt,
                                        PaymentMode::kBasic, behaviors);
  // v4's own payment entries are grounded independently of v8's lies.
  EXPECT_NEAR(out.total_payment(4), 6.0, 1e-6);
}

}  // namespace
}  // namespace tc::distsim
