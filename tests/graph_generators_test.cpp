#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/point.hpp"
#include "graph/connectivity.hpp"

namespace tc::graph {
namespace {

TEST(Generators, PathShape) {
  const NodeGraph g = make_path(5, 2.0);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_DOUBLE_EQ(g.node_cost(3), 2.0);
}

TEST(Generators, RingShape) {
  const NodeGraph g = make_ring(7);
  EXPECT_EQ(g.num_edges(), 7u);
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Generators, GridShape) {
  const NodeGraph g = make_grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  // 3*3 horizontal + 2*4 vertical = 17 edges.
  EXPECT_EQ(g.num_edges(), 17u);
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior
}

TEST(Generators, CompleteShape) {
  const NodeGraph g = make_complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(Generators, ErdosRenyiDeterministic) {
  const NodeGraph a = make_erdos_renyi(30, 0.2, 1.0, 5.0, 7);
  const NodeGraph b = make_erdos_renyi(30, 0.2, 1.0, 5.0, 7);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_DOUBLE_EQ(a.node_cost(13), b.node_cost(13));
}

TEST(Generators, ErdosRenyiEdgeDensity) {
  const NodeGraph g = make_erdos_renyi(100, 0.1, 1.0, 2.0, 11);
  const double expected = 0.1 * (100.0 * 99.0 / 2.0);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.25);
}

TEST(Generators, ErdosRenyiCostsInRange) {
  const NodeGraph g = make_erdos_renyi(50, 0.2, 3.0, 4.0, 13);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.node_cost(v), 3.0);
    EXPECT_LT(g.node_cost(v), 4.0);
  }
}

TEST(Generators, ErdosRenyiExtremeProbabilities) {
  EXPECT_EQ(make_erdos_renyi(10, 0.0, 1.0, 2.0, 1).num_edges(), 0u);
  EXPECT_EQ(make_erdos_renyi(10, 1.0, 1.0, 2.0, 1).num_edges(), 45u);
}

TEST(Generators, UnitDiskEdgesRespectRange) {
  UdgParams params;
  params.n = 150;
  params.range_m = 300.0;
  const NodeGraph g = make_unit_disk_node(params, 1.0, 2.0, 21);
  ASSERT_TRUE(g.has_positions());
  for (const auto& [u, v] : g.edges()) {
    EXPECT_LE(geom::distance(g.position(u), g.position(v)), 300.0 + 1e-9);
  }
}

TEST(Generators, UnitDiskContainsAllCloseNodes) {
  UdgParams params;
  params.n = 100;
  params.range_m = 400.0;
  const NodeGraph g = make_unit_disk_node(params, 1.0, 2.0, 22);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
      if (geom::distance(g.position(u), g.position(v)) <= 400.0) {
        EXPECT_TRUE(g.has_edge(u, v)) << u << "-" << v;
      }
    }
  }
}

TEST(Generators, UnitDiskLinkCostsFollowPowerLaw) {
  UdgParams params;
  params.n = 120;
  params.range_m = 300.0;
  params.kappa = 2.5;
  const LinkGraph g = make_unit_disk_link(params, 23);
  const double norm = std::pow(150.0, 2.5);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Arc& a : g.out_arcs(u)) {
      const double d = geom::distance(g.position(u), g.position(a.to));
      EXPECT_NEAR(a.cost, std::pow(d, 2.5) / norm, 1e-9);
      // Symmetric in the fixed-range model.
      EXPECT_NEAR(g.arc_cost(a.to, u), a.cost, 1e-12);
    }
  }
}

TEST(Generators, HeteroGraphArcsRespectSenderRange) {
  HeteroParams params;
  params.n = 150;
  const LinkGraph g = make_hetero_geometric(params, 31);
  // Arcs can be asymmetric: sender's range decides existence.
  std::size_t asymmetric = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Arc& a : g.out_arcs(u)) {
      const double d = geom::distance(g.position(u), g.position(a.to));
      EXPECT_LE(d, params.range_hi_m + 1e-9);
      EXPECT_GE(a.cost, params.c1_lo);  // c1 floor
      if (!finite_cost(g.arc_cost(a.to, u))) ++asymmetric;
    }
  }
  EXPECT_GT(asymmetric, 0u) << "heterogeneous ranges should induce "
                               "one-directional links";
}

TEST(Generators, Fig2TruthfulPaymentsMatchPaper) {
  // See DESIGN.md: truthful routing pays 2+2+2 = 6 along v1-v4-v3-v2-v0.
  const NodeGraph g = make_fig2_graph();
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_TRUE(is_biconnected(g));
  EXPECT_DOUBLE_EQ(g.node_cost(5), 4.0);
  EXPECT_TRUE(g.has_edge(kFig2DeniedEdge.first, kFig2DeniedEdge.second));
}

TEST(Generators, Fig4ShapeMatchesPaper) {
  const NodeGraph g = make_fig4_graph();
  EXPECT_EQ(g.num_nodes(), 9u);
  EXPECT_TRUE(is_biconnected(g));
  EXPECT_DOUBLE_EQ(g.node_cost(4), 5.0);  // c_4 = 5 as in the paper
}

TEST(Generators, ToLinkGraphCarriesOwnerCost) {
  const NodeGraph g = make_path(4, 3.0);
  const LinkGraph lg = to_link_graph(g);
  EXPECT_EQ(lg.num_arcs(), 2 * g.num_edges());
  EXPECT_DOUBLE_EQ(lg.arc_cost(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(lg.arc_cost(2, 1), 3.0);
}

class UdgSizeParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UdgSizeParam, Paper2000mDeploymentHasGiantComponent) {
  // At range 300m in a 2000x2000m region, n = 100 averages degree ~7: a
  // few stragglers may be isolated, but a giant component must dominate.
  UdgParams params;
  params.n = GetParam();
  const NodeGraph g = make_unit_disk_node(params, 1.0, 2.0, 1234);
  std::size_t largest = 0;
  std::vector<bool> assigned(g.num_nodes(), false);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (assigned[v]) continue;
    const auto seen = reachable_from(g, v);
    std::size_t size = 0;
    for (NodeId w = 0; w < g.num_nodes(); ++w) {
      if (seen[w]) {
        assigned[w] = true;
        ++size;
      }
    }
    largest = std::max(largest, size);
  }
  EXPECT_GE(largest, g.num_nodes() * 9 / 10) << "n=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, UdgSizeParam,
                         ::testing::Values(100, 200, 300, 400, 500));

}  // namespace
}  // namespace tc::graph
